//! The naive-JIT register rewrite: spill-everything allocation plus the
//! x87 scalar-float substitution.
//!
//! Mono's JIT (§IV of the paper) lacked global register allocation —
//! values live in stack slots and are reloaded around every operation —
//! and routed x86 scalar float arithmetic through the x87 FPU. This pass
//! reproduces both artifacts mechanically: every virtual scalar register
//! becomes a spill slot, each instruction reloads its operands into a
//! handful of scratch registers and spills its result, and scalar float
//! ALU ops become [`MInst::FpuBin`].

use std::collections::HashMap;

use vapor_targets::{AddrMode, MCode, MInst, SReg};

fn remap_addr(a: &AddrMode, m: &HashMap<SReg, SReg>) -> AddrMode {
    AddrMode {
        base: m[&a.base],
        idx: a.idx.map(|r| m[&r]),
        scale: a.scale,
        disp: a.disp,
    }
}

fn sreg_uses(inst: &MInst) -> Vec<SReg> {
    let mut out = Vec::new();
    let addr = |a: &AddrMode, out: &mut Vec<SReg>| {
        out.push(a.base);
        if let Some(i) = a.idx {
            out.push(i);
        }
    };
    match inst {
        MInst::Label(_) | MInst::Jump(_) | MInst::MovImmI { .. } | MInst::MovImmF { .. } => {}
        MInst::Branch { a, b, .. } => out.extend([*a, *b]),
        MInst::BranchImm { a, .. } => out.push(*a),
        MInst::MovS { src, .. } => out.push(*src),
        MInst::SBin { a, b, .. } | MInst::FpuBin { a, b, .. } => out.extend([*a, *b]),
        MInst::SBinImm { a, .. } | MInst::SUn { a, .. } | MInst::SCvt { a, .. } => out.push(*a),
        MInst::LoadS { addr: am, .. } => addr(am, &mut out),
        MInst::StoreS { src, addr: am, .. } => {
            out.push(*src);
            addr(am, &mut out);
        }
        MInst::LoadV { addr: am, .. } | MInst::LoadVFloor { addr: am, .. } => addr(am, &mut out),
        MInst::StoreV { addr: am, .. } => addr(am, &mut out),
        MInst::Splat { src, .. } => out.push(*src),
        MInst::Iota { start, inc, .. } => out.extend([*start, *inc]),
        MInst::SetLane { src, .. } => out.push(*src),
        MInst::GetLane { .. } => {}
        MInst::VShift {
            amt: vapor_targets::ShiftSrc::Reg(r),
            ..
        } => out.push(*r),
        MInst::VPermCtrl { addr: am, .. } => addr(am, &mut out),
        MInst::SetVl { avl, .. } => out.push(*avl),
        MInst::LoadVl { addr: am, .. } | MInst::StoreVl { addr: am, .. } => addr(am, &mut out),
        MInst::SpillLd { .. } | MInst::SpillSt { .. } => {}
        _ => {}
    }
    out
}

fn sreg_def(inst: &MInst) -> Option<SReg> {
    match inst {
        MInst::MovImmI { dst, .. }
        | MInst::MovImmF { dst, .. }
        | MInst::MovS { dst, .. }
        | MInst::SBin { dst, .. }
        | MInst::SBinImm { dst, .. }
        | MInst::SUn { dst, .. }
        | MInst::SCvt { dst, .. }
        | MInst::FpuBin { dst, .. }
        | MInst::LoadS { dst, .. }
        | MInst::GetLane { dst, .. }
        | MInst::VReduce { dst, .. }
        | MInst::SetVl { dst, .. } => Some(*dst),
        _ => None,
    }
}

fn substitute(inst: &MInst, m: &HashMap<SReg, SReg>) -> MInst {
    let mut i = inst.clone();
    match &mut i {
        MInst::Branch { a, b, .. } => {
            *a = m[a];
            *b = m[b];
        }
        MInst::BranchImm { a, .. } => *a = m[a],
        MInst::MovImmI { dst, .. } | MInst::MovImmF { dst, .. } => *dst = m[dst],
        MInst::MovS { dst, src } => {
            *dst = m[dst];
            *src = m[src];
        }
        MInst::SBin { dst, a, b, .. } | MInst::FpuBin { dst, a, b, .. } => {
            *dst = m[dst];
            *a = m[a];
            *b = m[b];
        }
        MInst::SBinImm { dst, a, .. } | MInst::SUn { dst, a, .. } | MInst::SCvt { dst, a, .. } => {
            *dst = m[dst];
            *a = m[a];
        }
        MInst::LoadS { dst, addr, .. } => {
            *dst = m[dst];
            *addr = remap_addr(addr, m);
        }
        MInst::StoreS { src, addr, .. } => {
            *src = m[src];
            *addr = remap_addr(addr, m);
        }
        MInst::LoadV { addr, .. } | MInst::LoadVFloor { addr, .. } | MInst::StoreV { addr, .. } => {
            *addr = remap_addr(addr, m);
        }
        MInst::Splat { src, .. } => *src = m[src],
        MInst::Iota { start, inc, .. } => {
            *start = m[start];
            *inc = m[inc];
        }
        MInst::SetLane { src, .. } => *src = m[src],
        MInst::GetLane { dst, .. } => *dst = m[dst],
        MInst::VShift {
            amt: vapor_targets::ShiftSrc::Reg(r),
            ..
        } => *r = m[r],
        MInst::VPermCtrl { addr, .. } => *addr = remap_addr(addr, m),
        MInst::VReduce { dst, .. } => *dst = m[dst],
        MInst::SetVl { dst, avl, .. } => {
            *dst = m[dst];
            *avl = m[avl];
        }
        MInst::LoadVl { addr, .. } | MInst::StoreVl { addr, .. } => *addr = remap_addr(addr, m),
        _ => {}
    }
    i
}

/// Rewrite `code` into spill-everything form.
///
/// `n_fixed` is the number of registers pre-set by the caller (params and
/// array bases/lengths): an entry shim spills them to their slots first.
/// When `x87` is set, scalar float binary ops become [`MInst::FpuBin`].
pub fn rewrite(code: &MCode, n_fixed: u32, x87: bool) -> MCode {
    let mut out: Vec<MInst> = Vec::with_capacity(code.insts.len() * 3 + n_fixed as usize);
    for r in 0..n_fixed {
        out.push(MInst::SpillSt {
            src: SReg(r),
            slot: r,
        });
    }
    for inst in &code.insts {
        // x87 substitution happens before the spill expansion so the
        // FpuBin cost/port weights apply.
        let inst = match inst {
            MInst::SBin { op, ty, dst, a, b } if x87 && ty.is_float() => MInst::FpuBin {
                op: *op,
                ty: *ty,
                dst: *dst,
                a: *a,
                b: *b,
            },
            other => other.clone(),
        };
        if matches!(inst, MInst::Label(_) | MInst::Jump(_)) {
            out.push(inst);
            continue;
        }
        let uses = sreg_uses(&inst);
        let def = sreg_def(&inst);
        let mut map: HashMap<SReg, SReg> = HashMap::new();
        let mut next_scratch = 0u32;
        for u in &uses {
            if !map.contains_key(u) {
                let scratch = SReg(next_scratch);
                next_scratch += 1;
                out.push(MInst::SpillLd {
                    dst: scratch,
                    slot: u.0,
                });
                map.insert(*u, scratch);
            }
        }
        if let Some(d) = def {
            // The def may coincide with a use (accumulators).
            map.entry(d).or_insert_with(|| {
                let scratch = SReg(next_scratch);
                next_scratch += 1;
                scratch
            });
        }
        out.push(substitute(&inst, &map));
        if let Some(d) = def {
            out.push(MInst::SpillSt {
                src: map[&d],
                slot: d.0,
            });
        }
    }
    MCode {
        insts: out,
        n_sregs: n_fixed.max(8),
        n_vregs: code.n_vregs,
        note: format!("{} +spilled", code.note),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vapor_ir::{BinOp, ScalarTy};
    use vapor_targets::{Cond, Label};

    #[test]
    fn every_op_reloads_and_spills() {
        let code = MCode {
            insts: vec![MInst::SBin {
                op: BinOp::Add,
                ty: ScalarTy::I64,
                dst: SReg(5),
                a: SReg(3),
                b: SReg(4),
            }],
            n_sregs: 6,
            n_vregs: 0,
            note: "t".into(),
        };
        let spilled = rewrite(&code, 2, false);
        // 2 shim spills + 2 reloads + op + 1 spill.
        assert_eq!(spilled.insts.len(), 6);
        assert!(matches!(spilled.insts[2], MInst::SpillLd { slot: 3, .. }));
        assert!(matches!(spilled.insts[5], MInst::SpillSt { slot: 5, .. }));
    }

    #[test]
    fn x87_substitutes_float_ops_only() {
        let code = MCode {
            insts: vec![
                MInst::SBin {
                    op: BinOp::Mul,
                    ty: ScalarTy::F32,
                    dst: SReg(0),
                    a: SReg(0),
                    b: SReg(0),
                },
                MInst::SBin {
                    op: BinOp::Add,
                    ty: ScalarTy::I64,
                    dst: SReg(1),
                    a: SReg(1),
                    b: SReg(1),
                },
            ],
            n_sregs: 2,
            n_vregs: 0,
            note: "t".into(),
        };
        let spilled = rewrite(&code, 0, true);
        assert!(spilled
            .insts
            .iter()
            .any(|i| matches!(i, MInst::FpuBin { .. })));
        assert!(spilled.insts.iter().any(|i| matches!(
            i,
            MInst::SBin {
                ty: ScalarTy::I64,
                ..
            }
        )));
    }

    #[test]
    fn control_flow_untouched_but_operands_reloaded() {
        let code = MCode {
            insts: vec![
                MInst::Label(Label(0)),
                MInst::Branch {
                    cond: Cond::Lt,
                    a: SReg(0),
                    b: SReg(1),
                    target: Label(0),
                },
            ],
            n_sregs: 2,
            n_vregs: 0,
            note: "t".into(),
        };
        let spilled = rewrite(&code, 2, false);
        // shim(2) + label + 2 reloads + branch
        assert_eq!(spilled.insts.len(), 6);
        assert!(matches!(spilled.insts[2], MInst::Label(_)));
    }

    #[test]
    fn accumulator_def_reuses_scratch() {
        // dst == a: must not reload stale value after op.
        let code = MCode {
            insts: vec![MInst::SBinImm {
                op: BinOp::Add,
                ty: ScalarTy::I64,
                dst: SReg(0),
                a: SReg(0),
                imm: 1,
            }],
            n_sregs: 1,
            n_vregs: 0,
            note: "t".into(),
        };
        let spilled = rewrite(&code, 1, false);
        // shim + reload + op + spill
        assert_eq!(spilled.insts.len(), 4);
        match (&spilled.insts[1], &spilled.insts[2], &spilled.insts[3]) {
            (
                MInst::SpillLd { dst: ld, slot: 0 },
                MInst::SBinImm { dst, a, .. },
                MInst::SpillSt { src, slot: 0 },
            ) => {
                assert_eq!(ld, a);
                assert_eq!(dst, src);
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }
}

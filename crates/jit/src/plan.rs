//! Online planning: version-guard folding and per-group vectorization
//! strategy (§III-C of the paper).

use vapor_bytecode::{BcFunction, BcStmt, GuardCond, LoopKind, Op, OpClass, ShiftAmt};
use vapor_ir::ScalarTy;
use vapor_targets::TargetDesc;

use crate::options::JitOptions;

/// How the online stage treats one vectorized loop group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupMode {
    /// Lower to real vector instructions with the target's VF.
    Vector,
    /// Direct scalarization (Figure 3b): VF = 1, every idiom mapped to
    /// its scalar counterpart; the main loop covers the whole range.
    DirectScalar,
    /// Zero-trip the vector main loop and let the always-present scalar
    /// tail loop execute everything (used when the body contains
    /// sub-vector idioms that have no VF=1 meaning).
    TailScalar,
}

impl GroupMode {
    /// Whether the group executes scalar code.
    pub fn is_scalar(self) -> bool {
        self != GroupMode::Vector
    }
}

/// Result of folding one guard.
#[derive(Debug, Clone, PartialEq)]
pub enum Fold {
    /// Condition statically true: lower the then-version only.
    True,
    /// Condition statically false: lower the else-version only.
    False,
    /// Runtime test needed for the given residual conjuncts.
    Runtime(Vec<GuardCond>),
}

/// Whether the target claims vector support for an operation class.
pub fn target_claims(target: &TargetDesc, c: OpClass) -> bool {
    match c {
        OpClass::FDiv => target.has_fdiv,
        OpClass::FSqrt => target.has_fsqrt,
        // The 2011 NEON backend *claims* widening multiply and
        // conversions but implements them via library helpers; claims
        // stay true so the vector version is selected (paper §V-B).
        OpClass::WidenMult => target.has_widen_mult,
        OpClass::Cvt => target.has_cvt,
        OpClass::DotProduct => target.has_dot_product,
        OpClass::PerLaneShift => target.has_per_lane_shift,
    }
}

/// Fold a guard condition as far as the pipeline's knowledge allows.
pub fn fold_guard(cond: &GuardCond, target: &TargetDesc, opts: &JitOptions) -> Fold {
    match cond {
        GuardCond::TypeSupported(t) => {
            if target.supports_elem(*t) {
                Fold::True
            } else {
                Fold::False
            }
        }
        GuardCond::VsAtLeast(b) => {
            if target.vs as u32 >= *b {
                Fold::True
            } else {
                Fold::False
            }
        }
        GuardCond::OpsSupported(cs) => {
            if cs.iter().all(|c| target_claims(target, *c)) {
                Fold::True
            } else {
                Fold::False
            }
        }
        GuardCond::BaseAligned(_) => {
            if opts.owns_memory() {
                // The JIT allocates arrays on MAX_VS boundaries.
                Fold::True
            } else {
                // gcc4cli-class online compilers and native peel-or-version
                // compilation both resolve base alignment at run time
                // (hoisted to one check per call).
                Fold::Runtime(vec![cond.clone()])
            }
        }
        GuardCond::NoAlias(..) => {
            if opts.owns_memory() || opts.assumes_no_alias() {
                Fold::True
            } else {
                Fold::Runtime(vec![cond.clone()])
            }
        }
        GuardCond::StrideAligned { stride, .. } => {
            // Foldable only when the stride is a literal (and alignment of
            // the base is knowable); our kernels pass runtime dimensions,
            // so this is normally a runtime test for every pipeline —
            // hoisted by optimizing compilers, re-evaluated in place by
            // the naive JIT (the MMM case of §V-A).
            if opts.folds_constants() {
                if let vapor_bytecode::Operand::ConstI(s) = stride {
                    let vs = target.vs.max(1) as i64;
                    let esize = match cond {
                        GuardCond::StrideAligned { ty, .. } => ty.size() as i64,
                        _ => unreachable!(),
                    };
                    let base_ok =
                        opts.owns_memory() || opts.pipeline == crate::options::Pipeline::Native;
                    if (s * esize) % vs == 0 && base_ok {
                        return Fold::True;
                    } else if (s * esize) % vs != 0 {
                        return Fold::False;
                    }
                }
            }
            Fold::Runtime(vec![cond.clone()])
        }
        GuardCond::All(gs) => {
            let mut residual = Vec::new();
            for g in gs {
                match fold_guard(g, target, opts) {
                    Fold::True => {}
                    Fold::False => return Fold::False,
                    Fold::Runtime(mut r) => residual.append(&mut r),
                }
            }
            if residual.is_empty() {
                Fold::True
            } else {
                Fold::Runtime(residual)
            }
        }
    }
}

/// The effective misalignment of a hinted access on this target:
/// `Some(k)` when the hint is usable (`mod != 0` and `VS` divides `mod`),
/// `None` when alignment is unknown until run time.
pub fn known_misalignment(mis: u32, modulo: u32, vs: usize) -> Option<u32> {
    if modulo == 0 || vs == 0 || !(modulo as usize).is_multiple_of(vs) {
        None
    } else {
        Some(mis % vs as u32)
    }
}

/// Reasons a group cannot be lowered to vector code on a target.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarReason {
    /// An element type has no vector support (or fewer than 2 lanes).
    Elem(ScalarTy),
    /// A store with unknown alignment on a target without misaligned
    /// stores.
    UnalignedStore,
    /// A load with unknown/nonzero misalignment on a target with neither
    /// misaligned loads nor explicit realignment.
    UnalignedLoad,
    /// Per-lane shift amounts on a target without them.
    PerLaneShift,
    /// Float division/sqrt without vector support (should normally have
    /// been guarded offline).
    FloatOp,
    /// The target has no SIMD at all.
    NoSimd,
    /// A half-based sub-vector idiom (widening multiply, pack/unpack,
    /// interleave, strided extract, dot product) on a vector-length-
    /// agnostic target: "lo/hi half" has no fixed meaning when the lane
    /// count is a runtime quantity.
    VlaSubVector,
    /// Mixed element widths inside one group on a VLA target: a single
    /// `setvl` element width cannot govern both.
    VlaMixedWidth,
}

fn scan_group(
    stmts: &[BcStmt],
    group: u32,
    target: &TargetDesc,
    bad: &mut Vec<ScalarReason>,
    has_subvector: &mut bool,
    widths: &mut Vec<usize>,
) {
    for s in stmts {
        match s {
            BcStmt::Loop {
                kind,
                group: g,
                body,
                ..
            } => {
                if *kind == LoopKind::VectorMain && *g == group {
                    scan_body(body, target, bad, has_subvector, widths);
                } else {
                    scan_group(body, group, target, bad, has_subvector, widths);
                }
            }
            BcStmt::Version {
                then_body,
                else_body,
                ..
            } => {
                scan_group(then_body, group, target, bad, has_subvector, widths);
                scan_group(else_body, group, target, bad, has_subvector, widths);
            }
            _ => {}
        }
    }
}

fn check_elem(t: ScalarTy, target: &TargetDesc, bad: &mut Vec<ScalarReason>) {
    if !target.supports_elem(t) {
        bad.push(ScalarReason::Elem(t));
    }
}

fn note_width(t: ScalarTy, widths: &mut Vec<usize>) {
    if !widths.contains(&t.size()) {
        widths.push(t.size());
    }
}

fn scan_body(
    body: &[BcStmt],
    target: &TargetDesc,
    bad: &mut Vec<ScalarReason>,
    has_subvector: &mut bool,
    widths: &mut Vec<usize>,
) {
    let vs = target.vs;
    for s in body {
        match s {
            BcStmt::Loop { body, .. } => scan_body(body, target, bad, has_subvector, widths),
            BcStmt::Version {
                then_body,
                else_body,
                ..
            } => {
                scan_body(then_body, target, bad, has_subvector, widths);
                scan_body(else_body, target, bad, has_subvector, widths);
            }
            BcStmt::VStore {
                ty, mis, modulo, ..
            } => {
                check_elem(*ty, target, bad);
                note_width(*ty, widths);
                match known_misalignment(*mis, *modulo, vs) {
                    Some(0) => {}
                    _ if target.misaligned_stores => {}
                    _ => bad.push(ScalarReason::UnalignedStore),
                }
            }
            BcStmt::SStore { .. } => {}
            BcStmt::Def { op, .. } => match op {
                Op::DotProduct(t, ..)
                | Op::WidenMultHi(t, ..)
                | Op::WidenMultLo(t, ..)
                | Op::Pack(t, ..)
                | Op::UnpackHi(t, ..)
                | Op::UnpackLo(t, ..)
                | Op::Extract { ty: t, .. }
                | Op::InterleaveHi(t, ..)
                | Op::InterleaveLo(t, ..) => {
                    *has_subvector = true;
                    if target.vla {
                        bad.push(ScalarReason::VlaSubVector);
                    }
                    check_elem(*t, target, bad);
                    note_width(*t, widths);
                }
                Op::VBin(b, t, ..) => {
                    check_elem(*t, target, bad);
                    note_width(*t, widths);
                    if *b == vapor_ir::BinOp::Div && !target.has_fdiv {
                        bad.push(ScalarReason::FloatOp);
                    }
                }
                Op::VUn(u, t, ..) => {
                    check_elem(*t, target, bad);
                    note_width(*t, widths);
                    if *u == vapor_ir::UnOp::Sqrt && !target.has_fsqrt {
                        bad.push(ScalarReason::FloatOp);
                    }
                }
                Op::VShl(t, _, amt) | Op::VShr(t, _, amt) => {
                    check_elem(*t, target, bad);
                    note_width(*t, widths);
                    if matches!(amt, ShiftAmt::PerLane(_)) && !target.has_per_lane_shift {
                        bad.push(ScalarReason::PerLaneShift);
                    }
                }
                Op::CvtInt2Fp(t, _) | Op::CvtFp2Int(t, _) => {
                    check_elem(*t, target, bad);
                    note_width(*t, widths);
                }
                Op::InitUniform(t, _) | Op::InitAffine(t, ..) | Op::InitReduc(t, ..) => {
                    check_elem(*t, target, bad);
                    note_width(*t, widths);
                }
                Op::ReducPlus(t, _) | Op::ReducMax(t, _) | Op::ReducMin(t, _) => {
                    check_elem(*t, target, bad);
                    note_width(*t, widths);
                }
                Op::ALoad(t, _) => {
                    check_elem(*t, target, bad);
                    note_width(*t, widths);
                }
                Op::RealignLoad {
                    ty, mis, modulo, ..
                } => {
                    check_elem(*ty, target, bad);
                    note_width(*ty, widths);
                    match known_misalignment(*mis, *modulo, vs) {
                        Some(0) => {}
                        _ if target.misaligned_loads || target.explicit_realign => {}
                        _ => bad.push(ScalarReason::UnalignedLoad),
                    }
                }
                _ => {}
            },
        }
    }
}

/// Decide the mode of one loop group by scanning its `VectorMain` body.
pub fn plan_group(f: &BcFunction, group: u32, target: &TargetDesc) -> GroupMode {
    let mut bad = Vec::new();
    let mut has_subvector = false;
    let mut widths = Vec::new();
    if !target.has_simd() {
        bad.push(ScalarReason::NoSimd);
    }
    scan_group(
        &f.body,
        group,
        target,
        &mut bad,
        &mut has_subvector,
        &mut widths,
    );
    // One stripmined loop has one `setvl` element width: a VLA group
    // mixing element sizes cannot be predicated consistently.
    if target.vla && widths.len() > 1 {
        bad.push(ScalarReason::VlaMixedWidth);
    }
    if bad.is_empty() {
        GroupMode::Vector
    } else if has_subvector {
        GroupMode::TailScalar
    } else {
        GroupMode::DirectScalar
    }
}

/// All loop groups present in a function.
pub fn groups_of(f: &BcFunction) -> Vec<u32> {
    let mut out = Vec::new();
    f.walk(&mut |s| {
        if let BcStmt::Loop {
            kind: LoopKind::VectorMain,
            group,
            ..
        } = s
        {
            if !out.contains(group) {
                out.push(*group);
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::Pipeline;
    use vapor_bytecode::{Addr, ArraySym, BcArray, BcParam, BcTy, Operand, Reg, Step};
    use vapor_ir::ArrayKind;
    use vapor_targets::{altivec, neon64, scalar_only, sse};

    #[test]
    fn type_guard_folds_per_target() {
        let naive = JitOptions::new(Pipeline::NaiveJit);
        let g = GuardCond::TypeSupported(ScalarTy::F64);
        assert_eq!(fold_guard(&g, &sse(), &naive), Fold::True);
        assert_eq!(fold_guard(&g, &altivec(), &naive), Fold::False);
    }

    #[test]
    fn base_aligned_folds_only_when_memory_owned() {
        let g = GuardCond::BaseAligned(ArraySym(0));
        assert_eq!(
            fold_guard(&g, &sse(), &JitOptions::new(Pipeline::NaiveJit)),
            Fold::True
        );
        assert!(matches!(
            fold_guard(&g, &sse(), &JitOptions::new(Pipeline::OptJit)),
            Fold::Runtime(_)
        ));
        assert!(matches!(
            fold_guard(&g, &sse(), &JitOptions::new(Pipeline::Native)),
            Fold::Runtime(_)
        ));
    }

    #[test]
    fn all_collects_residuals() {
        let g = GuardCond::All(vec![
            GuardCond::TypeSupported(ScalarTy::F32),
            GuardCond::BaseAligned(ArraySym(0)),
            GuardCond::NoAlias(ArraySym(0), ArraySym(1)),
        ]);
        match fold_guard(&g, &sse(), &JitOptions::new(Pipeline::OptJit)) {
            Fold::Runtime(r) => assert_eq!(r.len(), 2),
            other => panic!("expected runtime fold, got {other:?}"),
        }
    }

    #[test]
    fn known_misalignment_requires_divisible_mod() {
        assert_eq!(known_misalignment(8, 32, 16), Some(8));
        assert_eq!(known_misalignment(16, 32, 16), Some(0));
        assert_eq!(known_misalignment(8, 0, 16), None);
        assert_eq!(known_misalignment(8, 32, 12), None);
    }

    fn func_with_group(body: Vec<BcStmt>) -> BcFunction {
        let mut f = BcFunction::new(
            "t",
            vec![BcParam {
                name: "n".into(),
                ty: ScalarTy::I64,
            }],
            vec![BcArray {
                name: "x".into(),
                elem: ScalarTy::F32,
                kind: ArrayKind::Global,
            }],
        );
        let i = f.fresh_reg(BcTy::Scalar(ScalarTy::I64));
        f.body = vec![BcStmt::Loop {
            var: i,
            lo: Operand::ConstI(0),
            limit: Operand::Reg(Reg(0)),
            step: Step::Vf(ScalarTy::F32, 1),
            kind: LoopKind::VectorMain,
            group: 1,
            body,
        }];
        f
    }

    #[test]
    fn unaligned_store_scalarizes_on_altivec_only() {
        let mut proto = func_with_group(vec![]);
        let v = proto.fresh_reg(BcTy::Vec(ScalarTy::F32));
        let body = vec![
            BcStmt::Def {
                dst: v,
                op: Op::RealignLoad {
                    ty: ScalarTy::F32,
                    lo: None,
                    hi: None,
                    rt: None,
                    addr: Addr::new(ArraySym(0), Operand::ConstI(0)),
                    mis: 0,
                    modulo: 0,
                },
            },
            BcStmt::VStore {
                ty: ScalarTy::F32,
                addr: Addr::new(ArraySym(0), Operand::ConstI(0)),
                src: v,
                mis: 0,
                modulo: 0,
            },
        ];
        let mut f = func_with_group(body);
        f.regs = proto.regs.clone();
        assert_eq!(plan_group(&f, 1, &sse()), GroupMode::Vector);
        assert_eq!(plan_group(&f, 1, &neon64()), GroupMode::Vector);
        assert_eq!(plan_group(&f, 1, &altivec()), GroupMode::DirectScalar);
        assert_eq!(plan_group(&f, 1, &scalar_only()), GroupMode::DirectScalar);
    }

    #[test]
    fn subvector_idioms_force_tail_scalarization() {
        let mut proto = func_with_group(vec![]);
        let a = proto.fresh_reg(BcTy::Vec(ScalarTy::I16));
        let acc = proto.fresh_reg(BcTy::Vec(ScalarTy::I32));
        let body = vec![BcStmt::Def {
            dst: acc,
            op: Op::DotProduct(ScalarTy::I16, a, a, acc),
        }];
        let mut f = func_with_group(body);
        f.regs = proto.regs.clone();
        assert_eq!(plan_group(&f, 1, &sse()), GroupMode::Vector);
        assert_eq!(plan_group(&f, 1, &scalar_only()), GroupMode::TailScalar);
    }

    #[test]
    fn groups_enumerated() {
        let f = func_with_group(vec![]);
        assert_eq!(groups_of(&f), vec![1]);
    }
}

//! Compilation pipelines and their behavioral differences.
//!
//! Three code generators consume the same bytecode (paper Figure 4):
//!
//! * **NaiveJit** — the resource-constrained Mono-class JIT of §V-A:
//!   per-statement spill-everything register allocation, x87-style scalar
//!   floats on x86, head-tested loops, no constant folding across nested
//!   loops (version guards are re-evaluated where they appear), but it
//!   *owns allocation*, so base-alignment and no-alias guards fold.
//! * **OptJit** — the gcc4cli-class optimizing online compiler of §V-B:
//!   constant folding, bottom-tested loops, version-guard conditions
//!   precomputed once at function entry (LICM), fused addressing. It does
//!   not own allocation: alignment/alias guards become (cheap) runtime
//!   tests.
//! * **Native** — the monolithic offline baseline: like OptJit plus
//!   pointer-bump strength reduction, and it consumes *target-aware*
//!   bytecode (produced by the vectorizer with the target known).

use vapor_targets::{TargetDesc, TargetKind};

/// Which code generator to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pipeline {
    /// Mono-class resource-constrained JIT.
    NaiveJit,
    /// gcc4cli-class optimizing online compiler.
    OptJit,
    /// Monolithic native baseline code generator.
    Native,
}

/// Options controlling one compilation.
#[derive(Debug, Clone)]
pub struct JitOptions {
    /// The pipeline preset.
    pub pipeline: Pipeline,
    /// Route scalar float arithmetic through the x87-style FPU (the Mono
    /// x86 artifact). Defaults to `pipeline == NaiveJit` on x86 targets;
    /// set explicitly to ablate.
    pub x87_scalar_fp: Option<bool>,
}

impl JitOptions {
    /// Options for a pipeline with default knobs.
    pub fn new(pipeline: Pipeline) -> JitOptions {
        JitOptions {
            pipeline,
            x87_scalar_fp: None,
        }
    }

    /// Whether the generated code should use x87-style scalar floats.
    pub fn use_x87(&self, target: &TargetDesc) -> bool {
        self.x87_scalar_fp.unwrap_or(
            self.pipeline == Pipeline::NaiveJit
                && matches!(target.kind, TargetKind::Sse | TargetKind::Avx),
        )
    }

    /// Whether this pipeline owns runtime allocation (can fold
    /// base-alignment and no-alias guards to true).
    pub fn owns_memory(&self) -> bool {
        self.pipeline == Pipeline::NaiveJit
    }

    /// Whether the native `restrict`-style no-alias assumption applies.
    pub fn assumes_no_alias(&self) -> bool {
        self.pipeline == Pipeline::Native
    }

    /// Whether runtime guard conditions are precomputed once at function
    /// entry (cheap flag test at the version site) instead of being
    /// re-evaluated in place.
    pub fn hoists_guards(&self) -> bool {
        self.pipeline != Pipeline::NaiveJit
    }

    /// Whether constant operands are folded at compile time.
    pub fn folds_constants(&self) -> bool {
        self.pipeline != Pipeline::NaiveJit
    }

    /// Whether loops are bottom-tested (one branch per iteration).
    pub fn bottom_test_loops(&self) -> bool {
        self.pipeline != Pipeline::NaiveJit
    }

    /// Whether the spill-everything register rewrite runs.
    pub fn spills_everything(&self) -> bool {
        self.pipeline == Pipeline::NaiveJit
    }

    /// Whether pointer-bump strength reduction replaces indexed
    /// addressing inside loops (the native-codegen delta of §V-B).
    pub fn pointer_bump(&self) -> bool {
        self.pipeline == Pipeline::Native
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vapor_targets::{altivec, sse};

    #[test]
    fn x87_defaults_to_naive_on_x86_only() {
        let sse_t = sse();
        let av = altivec();
        assert!(JitOptions::new(Pipeline::NaiveJit).use_x87(&sse_t));
        assert!(!JitOptions::new(Pipeline::NaiveJit).use_x87(&av));
        assert!(!JitOptions::new(Pipeline::OptJit).use_x87(&sse_t));
        let mut o = JitOptions::new(Pipeline::NaiveJit);
        o.x87_scalar_fp = Some(false);
        assert!(!o.use_x87(&sse_t));
    }

    #[test]
    fn pipeline_behavior_matrix() {
        let naive = JitOptions::new(Pipeline::NaiveJit);
        let opt = JitOptions::new(Pipeline::OptJit);
        let native = JitOptions::new(Pipeline::Native);
        assert!(naive.owns_memory() && !opt.owns_memory() && !native.owns_memory());
        assert!(native.assumes_no_alias() && !opt.assumes_no_alias());
        assert!(opt.hoists_guards() && native.hoists_guards() && !naive.hoists_guards());
        assert!(native.pointer_bump() && !opt.pointer_bump());
        assert!(naive.spills_everything() && !opt.spills_everything());
    }
}

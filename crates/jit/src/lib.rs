//! # vapor-jit — the online compilation stage
//!
//! Lowers portable vectorized bytecode to target machine code
//! (§III-C of the paper): materializes `get_VF`, resolves `loop_bound`
//! and version guards, picks a realignment strategy per access from the
//! `mis`/`mod` hints (aligned / implicit `movdqu` / explicit
//! `lvsr`+`vperm`), scalarizes when the target lacks SIMD support, and
//! falls back to library helpers for idioms an immature backend cannot
//! expand (the paper's NEON `dissolve`/`dct` case).
//!
//! Three pipelines share the lowering ([`options::Pipeline`]): the
//! Mono-class naive JIT, the gcc4cli-class optimizing online compiler,
//! and the native baseline code generator.

pub mod dce;
pub mod lower;
pub mod options;
pub mod plan;
pub mod spill;

pub use lower::{compile, CompileStats, CompiledKernel, JitError};
pub use options::{JitOptions, Pipeline};
pub use plan::{fold_guard, known_misalignment, plan_group, Fold, GroupMode, ScalarReason};

//! Scalar element types of the kernel language.
//!
//! The paper's kernels operate on signed chars (`s8`), shorts (`s16`),
//! ints (`s32`), and single/double floats (`fp`/`dp`). Unsigned variants
//! are included because widening idioms (e.g. `unpack_hi/lo`) distinguish
//! sign/zero extension.

use std::fmt;

/// A scalar element type, as stored in arrays and scalar variables.
///
/// # Examples
///
/// ```
/// use vapor_ir::ScalarTy;
/// assert_eq!(ScalarTy::F32.size(), 4);
/// assert_eq!(ScalarTy::I16.widened(), Some(ScalarTy::I32));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScalarTy {
    /// Signed 8-bit integer (`s8` in the paper's kernel names).
    I8,
    /// Signed 16-bit integer (`s16`).
    I16,
    /// Signed 32-bit integer (`s32`).
    I32,
    /// Signed 64-bit integer (used for loop counters and addresses).
    I64,
    /// Unsigned 8-bit integer.
    U8,
    /// Unsigned 16-bit integer.
    U16,
    /// Unsigned 32-bit integer.
    U32,
    /// Single-precision float (`fp`).
    F32,
    /// Double-precision float (`dp`).
    F64,
}

impl ScalarTy {
    /// All element types, in a fixed order used by the binary encoding.
    pub const ALL: [ScalarTy; 9] = [
        ScalarTy::I8,
        ScalarTy::I16,
        ScalarTy::I32,
        ScalarTy::I64,
        ScalarTy::U8,
        ScalarTy::U16,
        ScalarTy::U32,
        ScalarTy::F32,
        ScalarTy::F64,
    ];

    /// Size of one element in bytes (`sizeof(T)` in the paper's Table 1).
    pub const fn size(self) -> usize {
        match self {
            ScalarTy::I8 | ScalarTy::U8 => 1,
            ScalarTy::I16 | ScalarTy::U16 => 2,
            ScalarTy::I32 | ScalarTy::U32 | ScalarTy::F32 => 4,
            ScalarTy::I64 | ScalarTy::F64 => 8,
        }
    }

    /// Whether this is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarTy::F32 | ScalarTy::F64)
    }

    /// Whether this is an integer type (signed or unsigned).
    pub fn is_int(self) -> bool {
        !self.is_float()
    }

    /// Whether this is a signed integer type.
    pub fn is_signed_int(self) -> bool {
        matches!(
            self,
            ScalarTy::I8 | ScalarTy::I16 | ScalarTy::I32 | ScalarTy::I64
        )
    }

    /// Whether this is an unsigned integer type.
    pub fn is_unsigned_int(self) -> bool {
        matches!(self, ScalarTy::U8 | ScalarTy::U16 | ScalarTy::U32)
    }

    /// The type with elements twice as wide and the same signedness, if it
    /// exists. Used by the widening idioms (`widen_mult`, `unpack`).
    pub fn widened(self) -> Option<ScalarTy> {
        match self {
            ScalarTy::I8 => Some(ScalarTy::I16),
            ScalarTy::I16 => Some(ScalarTy::I32),
            ScalarTy::I32 => Some(ScalarTy::I64),
            ScalarTy::U8 => Some(ScalarTy::U16),
            ScalarTy::U16 => Some(ScalarTy::U32),
            ScalarTy::U32 => Some(ScalarTy::I64),
            ScalarTy::F32 => Some(ScalarTy::F64),
            ScalarTy::I64 | ScalarTy::F64 => None,
        }
    }

    /// The type with elements half as wide and the same signedness, if it
    /// exists. Used by the `pack` demotion idiom.
    pub fn narrowed(self) -> Option<ScalarTy> {
        match self {
            ScalarTy::I16 => Some(ScalarTy::I8),
            ScalarTy::I32 => Some(ScalarTy::I16),
            ScalarTy::I64 => Some(ScalarTy::I32),
            ScalarTy::U16 => Some(ScalarTy::U8),
            ScalarTy::U32 => Some(ScalarTy::U16),
            ScalarTy::F64 => Some(ScalarTy::F32),
            ScalarTy::I8 | ScalarTy::U8 | ScalarTy::F32 => None,
        }
    }

    /// Mini-C keyword for this type (used by the pretty printer and parser).
    pub fn keyword(self) -> &'static str {
        match self {
            ScalarTy::I8 => "char",
            ScalarTy::I16 => "short",
            ScalarTy::I32 => "int",
            ScalarTy::I64 => "long",
            ScalarTy::U8 => "uchar",
            ScalarTy::U16 => "ushort",
            ScalarTy::U32 => "uint",
            ScalarTy::F32 => "float",
            ScalarTy::F64 => "double",
        }
    }

    /// Parse a mini-C type keyword.
    pub fn from_keyword(kw: &str) -> Option<ScalarTy> {
        ScalarTy::ALL.iter().copied().find(|t| t.keyword() == kw)
    }

    /// Stable opcode byte for the binary bytecode encoding.
    pub fn encoding(self) -> u8 {
        ScalarTy::ALL.iter().position(|&t| t == self).unwrap() as u8
    }

    /// Inverse of [`ScalarTy::encoding`].
    pub fn from_encoding(b: u8) -> Option<ScalarTy> {
        ScalarTy::ALL.get(b as usize).copied()
    }
}

impl fmt::Display for ScalarTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_c_layout() {
        assert_eq!(ScalarTy::I8.size(), 1);
        assert_eq!(ScalarTy::U16.size(), 2);
        assert_eq!(ScalarTy::F32.size(), 4);
        assert_eq!(ScalarTy::F64.size(), 8);
        assert_eq!(ScalarTy::I64.size(), 8);
    }

    #[test]
    fn widen_narrow_roundtrip() {
        for t in ScalarTy::ALL {
            if let Some(w) = t.widened() {
                assert_eq!(w.size(), t.size() * 2, "{t:?}");
                if t != ScalarTy::U32 {
                    assert_eq!(w.narrowed(), Some(t), "{t:?}");
                }
            }
        }
    }

    #[test]
    fn widened_preserves_class() {
        assert!(ScalarTy::F32.widened().unwrap().is_float());
        assert!(ScalarTy::I8.widened().unwrap().is_signed_int());
        assert!(ScalarTy::U8.widened().unwrap().is_unsigned_int());
    }

    #[test]
    fn keyword_roundtrip() {
        for t in ScalarTy::ALL {
            assert_eq!(ScalarTy::from_keyword(t.keyword()), Some(t));
        }
        assert_eq!(ScalarTy::from_keyword("bogus"), None);
    }

    #[test]
    fn encoding_roundtrip() {
        for t in ScalarTy::ALL {
            assert_eq!(ScalarTy::from_encoding(t.encoding()), Some(t));
        }
        assert_eq!(ScalarTy::from_encoding(200), None);
    }
}

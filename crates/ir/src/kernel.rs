//! Kernel definitions: the unit of compilation.

use crate::expr::{ArrayId, VarId};
use crate::stmt::Stmt;
use crate::ty::ScalarTy;

/// How a scalar variable is bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Kernel parameter, supplied by the caller.
    Param,
    /// Local temporary, initialized by assignment before use.
    Local,
    /// Loop induction variable (always `long`).
    Loop,
}

/// A scalar variable declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Source-level name (unique within the kernel).
    pub name: String,
    /// Scalar type.
    pub ty: ScalarTy,
    /// Binding kind.
    pub kind: VarKind,
}

/// How an array is bound — this matters for the alignment story of
/// §III-B(c) of the paper: a *native* offline compiler can force the
/// alignment of globals/locals, but nothing can be assumed about raw
/// pointer parameters until the JIT (which owns allocation) runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrayKind {
    /// Global/local array: a native compiler may force its base alignment.
    Global,
    /// Pointer parameter: base alignment statically unknown.
    PointerParam,
}

/// An array declaration. Arrays are 1-D; multi-dimensional accesses are
/// written with explicit linearized subscripts (`a[i*n + j]`), matching
/// the layout the paper's kernels use after transposition.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDecl {
    /// Source-level name (unique within the kernel).
    pub name: String,
    /// Element type.
    pub elem: ScalarTy,
    /// Binding kind (alignment provability).
    pub kind: ArrayKind,
}

/// A compilable kernel: symbol tables plus a structured body.
///
/// # Examples
///
/// ```
/// use vapor_ir::{KernelBuilder, ScalarTy, Expr, BinOp};
/// let mut b = KernelBuilder::new("dscal");
/// let n = b.scalar_param("n", ScalarTy::I64);
/// let a = b.scalar_param("alpha", ScalarTy::F32);
/// let x = b.array_param("x", ScalarTy::F32);
/// let i = b.fresh_loop_var("i");
/// b.for_loop(i, Expr::Int(0), Expr::Var(n), 1, |b| {
///     b.store(x, Expr::Var(i),
///             Expr::bin(BinOp::Mul, Expr::Var(a), Expr::load(x, Expr::Var(i))));
/// });
/// let k = b.finish();
/// assert_eq!(k.name, "dscal");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Kernel name (used by the suite registry and reports).
    pub name: String,
    /// Scalar variables (params, locals, loop vars), indexed by [`VarId`].
    pub vars: Vec<VarDecl>,
    /// Arrays, indexed by [`ArrayId`].
    pub arrays: Vec<ArrayDecl>,
    /// Top-level statements.
    pub body: Vec<Stmt>,
}

impl Kernel {
    /// Declaration of a scalar variable.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn var(&self, id: VarId) -> &VarDecl {
        &self.vars[id.0 as usize]
    }

    /// Declaration of an array.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.0 as usize]
    }

    /// Look up a scalar variable by name.
    pub fn var_named(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(|i| VarId(i as u32))
    }

    /// Look up an array by name.
    pub fn array_named(&self, name: &str) -> Option<ArrayId> {
        self.arrays
            .iter()
            .position(|a| a.name == name)
            .map(|i| ArrayId(i as u32))
    }

    /// Scalar parameters in declaration order.
    pub fn scalar_params(&self) -> impl Iterator<Item = (VarId, &VarDecl)> {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind == VarKind::Param)
            .map(|(i, v)| (VarId(i as u32), v))
    }

    /// Every statement in the kernel, pre-order.
    pub fn walk(&self, f: &mut impl FnMut(&Stmt)) {
        for s in &self.body {
            s.walk(f);
        }
    }

    /// Total number of statements (a crude size metric).
    pub fn stmt_count(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }
}

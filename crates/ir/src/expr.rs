//! Expressions of the scalar kernel IR.

use crate::sem::{BinOp, UnOp};
use crate::ty::ScalarTy;

/// Index of a scalar variable in a kernel's symbol table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// Index of an array in a kernel's array table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub u32);

/// A scalar expression.
///
/// Array subscripts are element indices (not byte offsets); the element
/// type comes from the array declaration. Expressions are pure: loads read
/// the array state at statement-execution time.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal (type determined by context; canonical i64 payload).
    Int(i64),
    /// Floating literal.
    Float(f64),
    /// Read of a scalar variable.
    Var(VarId),
    /// `array[index]` load.
    Load { array: ArrayId, index: Box<Expr> },
    /// Binary operation. Operand types must match; comparisons yield `int`.
    Bin {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Un { op: UnOp, arg: Box<Expr> },
    /// Explicit conversion to `ty`.
    Cast { ty: ScalarTy, arg: Box<Expr> },
}

impl Expr {
    /// Shorthand for a binary node.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Shorthand for a unary node.
    pub fn un(op: UnOp, arg: Expr) -> Expr {
        Expr::Un {
            op,
            arg: Box::new(arg),
        }
    }

    /// Shorthand for a cast node.
    pub fn cast(ty: ScalarTy, arg: Expr) -> Expr {
        Expr::Cast {
            ty,
            arg: Box::new(arg),
        }
    }

    /// Shorthand for a load node.
    pub fn load(array: ArrayId, index: Expr) -> Expr {
        Expr::Load {
            array,
            index: Box::new(index),
        }
    }

    /// Visit every sub-expression (including `self`), pre-order.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Load { index, .. } => index.walk(f),
            Expr::Bin { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            Expr::Un { arg, .. } | Expr::Cast { arg, .. } => arg.walk(f),
            Expr::Int(_) | Expr::Float(_) | Expr::Var(_) => {}
        }
    }

    /// Whether the expression mentions the given variable.
    pub fn uses_var(&self, v: VarId) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, Expr::Var(x) if *x == v) {
                found = true;
            }
        });
        found
    }

    /// Whether the expression contains any array load.
    pub fn has_load(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, Expr::Load { .. }) {
                found = true;
            }
        });
        found
    }

    /// Collect `(array, index-expr)` pairs for every load, pre-order.
    pub fn loads(&self) -> Vec<(ArrayId, &Expr)> {
        let mut out = Vec::new();
        self.collect_loads(&mut out);
        out
    }

    fn collect_loads<'a>(&'a self, out: &mut Vec<(ArrayId, &'a Expr)>) {
        match self {
            Expr::Load { array, index } => {
                out.push((*array, index));
                index.collect_loads(out);
            }
            Expr::Bin { lhs, rhs, .. } => {
                lhs.collect_loads(out);
                rhs.collect_loads(out);
            }
            Expr::Un { arg, .. } | Expr::Cast { arg, .. } => arg.collect_loads(out),
            Expr::Int(_) | Expr::Float(_) | Expr::Var(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_visits_all_nodes() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::load(ArrayId(0), Expr::Var(VarId(1))),
            Expr::cast(ScalarTy::F32, Expr::Int(3)),
        );
        let mut n = 0;
        e.walk(&mut |_| n += 1);
        assert_eq!(n, 5);
    }

    #[test]
    fn uses_var_and_loads() {
        let e = Expr::bin(
            BinOp::Mul,
            Expr::load(
                ArrayId(2),
                Expr::bin(BinOp::Add, Expr::Var(VarId(0)), Expr::Int(2)),
            ),
            Expr::Var(VarId(3)),
        );
        assert!(e.uses_var(VarId(0)));
        assert!(e.uses_var(VarId(3)));
        assert!(!e.uses_var(VarId(9)));
        assert!(e.has_load());
        let loads = e.loads();
        assert_eq!(loads.len(), 1);
        assert_eq!(loads[0].0, ArrayId(2));
    }
}

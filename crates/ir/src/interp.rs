//! Reference interpreter — the correctness oracle for the whole system.
//!
//! Every compiled configuration (native, split/JIT, scalarized) is checked
//! against the output of this interpreter in the integration tests.

use std::collections::HashMap;

use crate::expr::{ArrayId, Expr, VarId};
use crate::kernel::{Kernel, VarKind};
use crate::sem::{eval_bin, eval_cast, eval_un, read_elem, write_elem, Value};
use crate::stmt::Stmt;
use crate::ty::ScalarTy;
use crate::validate::{infer_expr, IrError};

/// A typed array buffer (elements stored little-endian, matching the
/// virtual machine's memory image).
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayData {
    /// Element type.
    pub elem: ScalarTy,
    /// Raw storage; length must be a multiple of `elem.size()`.
    pub bytes: Vec<u8>,
}

impl ArrayData {
    /// A zero-filled array of `len` elements.
    pub fn zeroed(elem: ScalarTy, len: usize) -> ArrayData {
        ArrayData {
            elem,
            bytes: vec![0; len * elem.size()],
        }
    }

    /// Build from `i64` element values (integer types only).
    pub fn from_ints(elem: ScalarTy, vals: &[i64]) -> ArrayData {
        let mut a = ArrayData::zeroed(elem, vals.len());
        for (i, &v) in vals.iter().enumerate() {
            a.set(i, Value::Int(v));
        }
        a
    }

    /// Build from `f64` element values (float types only).
    pub fn from_floats(elem: ScalarTy, vals: &[f64]) -> ArrayData {
        let mut a = ArrayData::zeroed(elem, vals.len());
        for (i, &v) in vals.iter().enumerate() {
            a.set(i, Value::Float(v));
        }
        a
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.bytes.len() / self.elem.size()
    }

    /// Whether the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Element at index `i`.
    ///
    /// # Panics
    /// Panics when out of bounds.
    pub fn get(&self, i: usize) -> Value {
        read_elem(self.elem, &self.bytes, i * self.elem.size())
    }

    /// Set element at index `i`.
    ///
    /// # Panics
    /// Panics when out of bounds.
    pub fn set(&mut self, i: usize, v: Value) {
        write_elem(self.elem, &mut self.bytes, i * self.elem.size(), v);
    }

    /// All elements as values.
    pub fn values(&self) -> Vec<Value> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }
}

/// Scalar and array bindings for one kernel execution.
#[derive(Debug, Clone)]
pub struct Bindings {
    scalars: HashMap<String, Value>,
    arrays: HashMap<String, ArrayData>,
}

impl Bindings {
    /// Empty bindings.
    pub fn new() -> Bindings {
        Bindings {
            scalars: HashMap::new(),
            arrays: HashMap::new(),
        }
    }

    /// Bind a scalar parameter by name.
    pub fn set_scalar(&mut self, name: &str, v: Value) -> &mut Self {
        self.scalars.insert(name.to_owned(), v);
        self
    }

    /// Bind an integer scalar parameter by name.
    pub fn set_int(&mut self, name: &str, v: i64) -> &mut Self {
        self.set_scalar(name, Value::Int(v))
    }

    /// Bind a float scalar parameter by name.
    pub fn set_float(&mut self, name: &str, v: f64) -> &mut Self {
        self.set_scalar(name, Value::Float(v))
    }

    /// Bind an array by name.
    pub fn set_array(&mut self, name: &str, a: ArrayData) -> &mut Self {
        self.arrays.insert(name.to_owned(), a);
        self
    }

    /// Read back an array after execution.
    pub fn array(&self, name: &str) -> Option<&ArrayData> {
        self.arrays.get(name)
    }

    /// Scalar binding by name.
    pub fn scalar(&self, name: &str) -> Option<Value> {
        self.scalars.get(name).copied()
    }

    /// Iterate over array bindings.
    pub fn arrays(&self) -> impl Iterator<Item = (&String, &ArrayData)> {
        self.arrays.iter()
    }
}

impl Default for Bindings {
    fn default() -> Self {
        Bindings::new()
    }
}

struct Interp<'a> {
    k: &'a Kernel,
    scalars: Vec<Option<Value>>,
    arrays: Vec<ArrayData>,
}

impl<'a> Interp<'a> {
    fn rerr(&self, msg: String) -> IrError {
        IrError::Runtime(format!("{}: {msg}", self.k.name))
    }

    fn eval(&self, e: &Expr, expected: ScalarTy) -> Result<Value, IrError> {
        match e {
            Expr::Int(v) => Ok(if expected.is_float() {
                Value::Float(*v as f64)
            } else {
                Value::Int(crate::sem::wrap_int(expected, *v))
            }),
            Expr::Float(v) => Ok(Value::Float(if expected == ScalarTy::F32 {
                *v as f32 as f64
            } else {
                *v
            })),
            Expr::Var(v) => self.scalars[v.0 as usize]
                .ok_or_else(|| self.rerr(format!("read of unset scalar {}", self.k.var(*v).name))),
            Expr::Load { array, index } => {
                let idx = self.eval(index, ScalarTy::I64)?.as_int();
                let a = &self.arrays[array.0 as usize];
                if idx < 0 || idx as usize >= a.len() {
                    return Err(self.rerr(format!(
                        "load {}[{idx}] out of bounds (len {})",
                        self.k.array(*array).name,
                        a.len()
                    )));
                }
                Ok(a.get(idx as usize))
            }
            Expr::Bin { op, lhs, rhs } => {
                if op.is_comparison() {
                    let oty = infer_expr(self.k, lhs)
                        .or_else(|| infer_expr(self.k, rhs))
                        .unwrap_or(ScalarTy::I64);
                    let a = self.eval(lhs, oty)?;
                    let b = self.eval(rhs, oty)?;
                    Ok(eval_bin(*op, oty, a, b))
                } else {
                    let a = self.eval(lhs, expected)?;
                    let b = self.eval(rhs, expected)?;
                    Ok(eval_bin(*op, expected, a, b))
                }
            }
            Expr::Un { op, arg } => {
                let a = self.eval(arg, expected)?;
                Ok(eval_un(*op, expected, a))
            }
            Expr::Cast { ty, arg } => {
                let src = infer_expr(self.k, arg).unwrap_or(match &**arg {
                    Expr::Float(_) => ScalarTy::F64,
                    _ => ScalarTy::I64,
                });
                let v = self.eval(arg, src)?;
                Ok(eval_cast(src, *ty, v))
            }
        }
    }

    fn exec(&mut self, s: &Stmt) -> Result<(), IrError> {
        match s {
            Stmt::For {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                let lo = self.eval(lo, ScalarTy::I64)?.as_int();
                let hi = self.eval(hi, ScalarTy::I64)?.as_int();
                let mut i = lo;
                while i < hi {
                    self.scalars[var.0 as usize] = Some(Value::Int(i));
                    for st in body {
                        self.exec(st)?;
                    }
                    i += step;
                }
                Ok(())
            }
            Stmt::Assign { var, value } => {
                let ty = self.k.var(*var).ty;
                let v = self.eval(value, ty)?;
                self.scalars[var.0 as usize] = Some(v);
                Ok(())
            }
            Stmt::Store {
                array,
                index,
                value,
            } => {
                let idx = self.eval(index, ScalarTy::I64)?.as_int();
                let elem = self.k.array(*array).elem;
                let v = self.eval(value, elem)?;
                let a = &mut self.arrays[array.0 as usize];
                if idx < 0 || idx as usize >= a.len() {
                    let name = self.k.array(*array).name.clone();
                    let len = a.len();
                    return Err(self.rerr(format!("store {name}[{idx}] out of bounds (len {len})")));
                }
                a.set(idx as usize, v);
                Ok(())
            }
        }
    }
}

/// Execute `k` against `bindings`, mutating bound arrays in place.
///
/// # Errors
/// Reports unbound parameters, out-of-bounds accesses, and reads of unset
/// locals as [`IrError::Runtime`].
pub fn interpret(k: &Kernel, bindings: &mut Bindings) -> Result<(), IrError> {
    let mut scalars = vec![None; k.vars.len()];
    for (id, decl) in k.vars.iter().enumerate() {
        if decl.kind == VarKind::Param {
            let v = bindings.scalars.get(&decl.name).copied().ok_or_else(|| {
                IrError::Runtime(format!(
                    "{}: unbound scalar parameter {}",
                    k.name, decl.name
                ))
            })?;
            scalars[id] = Some(v);
        }
    }
    let mut arrays = Vec::with_capacity(k.arrays.len());
    for decl in &k.arrays {
        let a =
            bindings.arrays.get(&decl.name).cloned().ok_or_else(|| {
                IrError::Runtime(format!("{}: unbound array {}", k.name, decl.name))
            })?;
        if a.elem != decl.elem {
            return Err(IrError::Runtime(format!(
                "{}: array {} bound with element type {}, declared {}",
                k.name, decl.name, a.elem, decl.elem
            )));
        }
        arrays.push(a);
    }
    let mut interp = Interp { k, scalars, arrays };
    for s in &k.body {
        interp.exec(s)?;
    }
    for (decl, a) in k.arrays.iter().zip(interp.arrays) {
        bindings.arrays.insert(decl.name.clone(), a);
    }
    Ok(())
}

/// Convenience: run a kernel by id-indexed array list (used by harnesses
/// that already resolved names). Returns the final array states.
pub fn interpret_arrays(
    k: &Kernel,
    scalar_args: &[(VarId, Value)],
    arrays: Vec<ArrayData>,
) -> Result<Vec<ArrayData>, IrError> {
    let mut scalars = vec![None; k.vars.len()];
    for (id, v) in scalar_args {
        scalars[id.0 as usize] = Some(*v);
    }
    let mut interp = Interp { k, scalars, arrays };
    for s in &k.body {
        interp.exec(s)?;
    }
    let _ = ArrayId(0);
    Ok(interp.arrays)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::sem::BinOp;

    fn saxpy_kernel() -> Kernel {
        let mut b = KernelBuilder::new("saxpy");
        let n = b.scalar_param("n", ScalarTy::I64);
        let a = b.scalar_param("alpha", ScalarTy::F32);
        let x = b.array_param("x", ScalarTy::F32);
        let y = b.array_param("y", ScalarTy::F32);
        let i = b.fresh_loop_var("i");
        b.for_loop(i, Expr::Int(0), Expr::Var(n), 1, |b| {
            b.store(
                y,
                Expr::Var(i),
                Expr::bin(
                    BinOp::Add,
                    Expr::bin(BinOp::Mul, Expr::Var(a), Expr::load(x, Expr::Var(i))),
                    Expr::load(y, Expr::Var(i)),
                ),
            );
        });
        b.finish()
    }

    #[test]
    fn saxpy_runs() {
        let k = saxpy_kernel();
        let mut b = Bindings::new();
        b.set_int("n", 4)
            .set_float("alpha", 2.0)
            .set_array(
                "x",
                ArrayData::from_floats(ScalarTy::F32, &[1.0, 2.0, 3.0, 4.0]),
            )
            .set_array(
                "y",
                ArrayData::from_floats(ScalarTy::F32, &[10.0, 10.0, 10.0, 10.0]),
            );
        interpret(&k, &mut b).unwrap();
        let y = b.array("y").unwrap();
        assert_eq!(
            y.values(),
            vec![
                Value::Float(12.0),
                Value::Float(14.0),
                Value::Float(16.0),
                Value::Float(18.0)
            ]
        );
    }

    #[test]
    fn reduction_with_local() {
        let mut bld = KernelBuilder::new("sum");
        let n = bld.scalar_param("n", ScalarTy::I64);
        let a = bld.array_param("a", ScalarTy::I32);
        let out = bld.array_param("out", ScalarTy::I32);
        let s = bld.local("s", ScalarTy::I32);
        let i = bld.fresh_loop_var("i");
        bld.assign(s, Expr::Int(0));
        bld.for_loop(i, Expr::Int(0), Expr::Var(n), 1, |b| {
            b.assign(
                s,
                Expr::bin(BinOp::Add, Expr::Var(s), Expr::load(a, Expr::Var(i))),
            );
        });
        bld.store(out, Expr::Int(0), Expr::Var(s));
        let k = bld.finish();
        crate::validate::validate(&k).unwrap();

        let mut b = Bindings::new();
        b.set_int("n", 5)
            .set_array("a", ArrayData::from_ints(ScalarTy::I32, &[1, 2, 3, 4, 5]))
            .set_array("out", ArrayData::zeroed(ScalarTy::I32, 1));
        interpret(&k, &mut b).unwrap();
        assert_eq!(b.array("out").unwrap().get(0), Value::Int(15));
    }

    #[test]
    fn out_of_bounds_reported() {
        let k = saxpy_kernel();
        let mut b = Bindings::new();
        b.set_int("n", 8)
            .set_float("alpha", 1.0)
            .set_array("x", ArrayData::zeroed(ScalarTy::F32, 4))
            .set_array("y", ArrayData::zeroed(ScalarTy::F32, 4));
        let err = interpret(&k, &mut b).unwrap_err();
        assert!(matches!(err, IrError::Runtime(_)), "{err}");
    }

    #[test]
    fn unbound_param_reported() {
        let k = saxpy_kernel();
        let mut b = Bindings::new();
        let err = interpret(&k, &mut b).unwrap_err();
        assert!(err.to_string().contains("unbound"));
    }
}

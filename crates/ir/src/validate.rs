//! Type checking and structural validation of kernels.
//!
//! Validation is bidirectional: literals are checked against the type
//! expected by their context (as in C, after the usual conversions have
//! been made explicit), while variables, loads, and casts synthesize
//! types that must match the context exactly — the IR has **no implicit
//! conversions** apart from literal typing.

use std::fmt;

use crate::expr::{Expr, VarId};
use crate::kernel::{Kernel, VarKind};
use crate::sem::UnOp;
use crate::stmt::Stmt;
use crate::ty::ScalarTy;

/// Validation/interpretation errors for the IR layer.
#[derive(Debug, Clone, PartialEq)]
pub enum IrError {
    /// A type mismatch with a human-readable explanation.
    Type(String),
    /// Structural rule violation (loop var assigned, bad step, ...).
    Structure(String),
    /// Runtime error in the reference interpreter.
    Runtime(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::Type(m) => write!(f, "type error: {m}"),
            IrError::Structure(m) => write!(f, "structure error: {m}"),
            IrError::Runtime(m) => write!(f, "runtime error: {m}"),
        }
    }
}

impl std::error::Error for IrError {}

fn terr(msg: impl Into<String>) -> IrError {
    IrError::Type(msg.into())
}

/// Synthesize the type of an expression where possible (literals are
/// contextually typed and return `None`).
pub fn infer_expr(k: &Kernel, e: &Expr) -> Option<ScalarTy> {
    match e {
        Expr::Int(_) | Expr::Float(_) => None,
        Expr::Var(v) => Some(k.var(*v).ty),
        Expr::Load { array, .. } => Some(k.array(*array).elem),
        Expr::Cast { ty, .. } => Some(*ty),
        Expr::Bin { op, lhs, rhs } => {
            if op.is_comparison() {
                Some(ScalarTy::I32)
            } else {
                infer_expr(k, lhs).or_else(|| infer_expr(k, rhs))
            }
        }
        Expr::Un { op, arg } => match op {
            UnOp::Neg | UnOp::Abs | UnOp::Sqrt => infer_expr(k, arg),
        },
    }
}

/// Check `e` against the expected type.
pub fn check_expr(k: &Kernel, e: &Expr, expected: ScalarTy) -> Result<(), IrError> {
    match e {
        Expr::Int(_) => Ok(()), // integer literals coerce to any numeric type
        Expr::Float(_) => {
            if expected.is_float() {
                Ok(())
            } else {
                Err(terr(format!(
                    "float literal used at integer type {expected}"
                )))
            }
        }
        Expr::Var(v) => {
            let ty = k.var(*v).ty;
            if ty == expected {
                Ok(())
            } else {
                Err(terr(format!(
                    "variable {} has type {ty}, expected {expected}",
                    k.var(*v).name
                )))
            }
        }
        Expr::Load { array, index } => {
            let elem = k.array(*array).elem;
            if elem != expected {
                return Err(terr(format!(
                    "load from {}[] has type {elem}, expected {expected}",
                    k.array(*array).name
                )));
            }
            check_expr(k, index, ScalarTy::I64)
        }
        Expr::Bin { op, lhs, rhs } => {
            if op.is_comparison() {
                if expected != ScalarTy::I32 {
                    return Err(terr(format!("comparison yields int, expected {expected}")));
                }
                let operand_ty = infer_expr(k, lhs)
                    .or_else(|| infer_expr(k, rhs))
                    .unwrap_or(ScalarTy::I64);
                check_expr(k, lhs, operand_ty)?;
                check_expr(k, rhs, operand_ty)
            } else {
                if op.int_only() && expected.is_float() {
                    return Err(terr(format!(
                        "integer-only operator {} at float type {expected}",
                        op.symbol()
                    )));
                }
                check_expr(k, lhs, expected)?;
                check_expr(k, rhs, expected)
            }
        }
        Expr::Un { op, arg } => {
            if *op == UnOp::Sqrt && !expected.is_float() {
                return Err(terr("sqrt at integer type".to_owned()));
            }
            check_expr(k, arg, expected)
        }
        Expr::Cast { ty, arg } => {
            if *ty != expected {
                return Err(terr(format!("cast to {ty}, expected {expected}")));
            }
            let src = infer_expr(k, arg).unwrap_or(match &**arg {
                Expr::Float(_) => ScalarTy::F64,
                _ => ScalarTy::I64,
            });
            check_expr(k, arg, src)
        }
    }
}

fn check_stmt(k: &Kernel, s: &Stmt, open_loops: &mut Vec<VarId>) -> Result<(), IrError> {
    match s {
        Stmt::For {
            var,
            lo,
            hi,
            step,
            body,
        } => {
            let decl = k.var(*var);
            if decl.kind != VarKind::Loop {
                return Err(IrError::Structure(format!(
                    "for-loop variable {} must be declared as a loop variable",
                    decl.name
                )));
            }
            if decl.ty != ScalarTy::I64 {
                return Err(IrError::Structure(format!(
                    "loop variable {} must be long",
                    decl.name
                )));
            }
            if *step <= 0 {
                return Err(IrError::Structure(format!(
                    "loop step must be positive, got {step}"
                )));
            }
            if open_loops.contains(var) {
                return Err(IrError::Structure(format!(
                    "loop variable {} reused in nested loop",
                    decl.name
                )));
            }
            check_expr(k, lo, ScalarTy::I64)?;
            check_expr(k, hi, ScalarTy::I64)?;
            open_loops.push(*var);
            for st in body {
                check_stmt(k, st, open_loops)?;
            }
            open_loops.pop();
            Ok(())
        }
        Stmt::Assign { var, value } => {
            let decl = k.var(*var);
            if decl.kind != VarKind::Local {
                return Err(IrError::Structure(format!(
                    "only locals may be assigned; {} is {:?}",
                    decl.name, decl.kind
                )));
            }
            check_expr(k, value, decl.ty)
        }
        Stmt::Store {
            array,
            index,
            value,
        } => {
            check_expr(k, index, ScalarTy::I64)?;
            check_expr(k, value, k.array(*array).elem)
        }
    }
}

/// Validate a kernel: every statement well-typed, loop structure sound.
///
/// # Errors
/// Returns the first [`IrError`] found.
pub fn validate(k: &Kernel) -> Result<(), IrError> {
    for (i, v) in k.vars.iter().enumerate() {
        for w in &k.vars[i + 1..] {
            if v.name == w.name {
                return Err(IrError::Structure(format!("duplicate scalar {}", v.name)));
            }
        }
    }
    let mut open = Vec::new();
    for s in &k.body {
        check_stmt(k, s, &mut open)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::expr::Expr;
    use crate::sem::BinOp;

    fn saxpy() -> Kernel {
        let mut b = KernelBuilder::new("saxpy");
        let n = b.scalar_param("n", ScalarTy::I64);
        let a = b.scalar_param("alpha", ScalarTy::F32);
        let x = b.array_param("x", ScalarTy::F32);
        let y = b.array_param("y", ScalarTy::F32);
        let i = b.fresh_loop_var("i");
        b.for_loop(i, Expr::Int(0), Expr::Var(n), 1, |b| {
            b.store(
                y,
                Expr::Var(i),
                Expr::bin(
                    BinOp::Add,
                    Expr::bin(BinOp::Mul, Expr::Var(a), Expr::load(x, Expr::Var(i))),
                    Expr::load(y, Expr::Var(i)),
                ),
            );
        });
        b.finish()
    }

    #[test]
    fn saxpy_validates() {
        assert_eq!(validate(&saxpy()), Ok(()));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut k = saxpy();
        // Store an int-typed variable into the float array.
        if let Stmt::For { body, .. } = &mut k.body[0] {
            if let Stmt::Store { value, .. } = &mut body[0] {
                *value = Expr::Var(VarId(0)); // n: long
            }
        }
        assert!(matches!(validate(&k), Err(IrError::Type(_))));
    }

    #[test]
    fn int_literal_coerces_float_literal_does_not() {
        let k = saxpy();
        assert!(check_expr(&k, &Expr::Int(3), ScalarTy::F32).is_ok());
        assert!(check_expr(&k, &Expr::Float(3.0), ScalarTy::I32).is_err());
    }

    #[test]
    fn loop_var_not_assignable() {
        let mut b = KernelBuilder::new("bad");
        let i = b.fresh_loop_var("i");
        b.for_loop(i, Expr::Int(0), Expr::Int(4), 1, |b| {
            b.push(Stmt::Assign {
                var: i,
                value: Expr::Int(0),
            });
        });
        assert!(matches!(validate(&b.finish()), Err(IrError::Structure(_))));
    }

    #[test]
    fn comparison_types() {
        let k = saxpy();
        let n = k.var_named("n").unwrap();
        let cmp = Expr::bin(BinOp::CmpLt, Expr::Var(n), Expr::Int(4));
        assert!(check_expr(&k, &cmp, ScalarTy::I32).is_ok());
        assert!(check_expr(&k, &cmp, ScalarTy::F32).is_err());
    }
}

//! Fluent construction of [`Kernel`]s, used by tests and by kernels that
//! are easier to build programmatically than to parse.

use crate::expr::{ArrayId, Expr, VarId};
use crate::kernel::{ArrayDecl, ArrayKind, Kernel, VarDecl, VarKind};
use crate::stmt::Stmt;
use crate::ty::ScalarTy;

/// Builder for a [`Kernel`].
///
/// Statements are appended to the innermost open scope; [`KernelBuilder::for_loop`]
/// opens a nested scope for the closure it runs.
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    vars: Vec<VarDecl>,
    arrays: Vec<ArrayDecl>,
    scopes: Vec<Vec<Stmt>>,
}

impl KernelBuilder {
    /// Start building a kernel with the given name.
    pub fn new(name: impl Into<String>) -> KernelBuilder {
        KernelBuilder {
            name: name.into(),
            vars: Vec::new(),
            arrays: Vec::new(),
            scopes: vec![Vec::new()],
        }
    }

    fn add_var(&mut self, name: &str, ty: ScalarTy, kind: VarKind) -> VarId {
        assert!(
            !self.vars.iter().any(|v| v.name == name),
            "duplicate scalar name {name:?}"
        );
        self.vars.push(VarDecl {
            name: name.to_owned(),
            ty,
            kind,
        });
        VarId(self.vars.len() as u32 - 1)
    }

    /// Declare a scalar parameter.
    pub fn scalar_param(&mut self, name: &str, ty: ScalarTy) -> VarId {
        self.add_var(name, ty, VarKind::Param)
    }

    /// Declare a scalar local.
    pub fn local(&mut self, name: &str, ty: ScalarTy) -> VarId {
        self.add_var(name, ty, VarKind::Local)
    }

    /// Declare a fresh loop variable (type `long`).
    pub fn fresh_loop_var(&mut self, name: &str) -> VarId {
        self.add_var(name, ScalarTy::I64, VarKind::Loop)
    }

    /// Declare an array parameter passed as a raw pointer
    /// (alignment unknown to an offline compiler).
    pub fn array_param(&mut self, name: &str, elem: ScalarTy) -> ArrayId {
        self.add_array(name, elem, ArrayKind::PointerParam)
    }

    /// Declare a global array (alignment forcible by a native compiler).
    pub fn global_array(&mut self, name: &str, elem: ScalarTy) -> ArrayId {
        self.add_array(name, elem, ArrayKind::Global)
    }

    fn add_array(&mut self, name: &str, elem: ScalarTy, kind: ArrayKind) -> ArrayId {
        assert!(
            !self.arrays.iter().any(|a| a.name == name),
            "duplicate array name {name:?}"
        );
        self.arrays.push(ArrayDecl {
            name: name.to_owned(),
            elem,
            kind,
        });
        ArrayId(self.arrays.len() as u32 - 1)
    }

    /// Append a `for` loop; `body` populates it through the builder.
    pub fn for_loop(
        &mut self,
        var: VarId,
        lo: Expr,
        hi: Expr,
        step: i64,
        body: impl FnOnce(&mut KernelBuilder),
    ) {
        self.scopes.push(Vec::new());
        body(self);
        let stmts = self.scopes.pop().expect("builder scope underflow");
        self.push(Stmt::For {
            var,
            lo,
            hi,
            step,
            body: stmts,
        });
    }

    /// Append a scalar assignment.
    pub fn assign(&mut self, var: VarId, value: Expr) {
        self.push(Stmt::Assign { var, value });
    }

    /// Append an array store.
    pub fn store(&mut self, array: ArrayId, index: Expr, value: Expr) {
        self.push(Stmt::Store {
            array,
            index,
            value,
        });
    }

    /// Append an arbitrary statement.
    pub fn push(&mut self, s: Stmt) {
        self.scopes
            .last_mut()
            .expect("builder scope underflow")
            .push(s);
    }

    /// Finish and return the kernel.
    ///
    /// # Panics
    /// Panics if a `for_loop` scope was left open (cannot happen through
    /// the public API).
    pub fn finish(mut self) -> Kernel {
        assert_eq!(self.scopes.len(), 1, "unbalanced builder scopes");
        Kernel {
            name: self.name,
            vars: self.vars,
            arrays: self.arrays,
            body: self.scopes.pop().unwrap(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sem::BinOp;

    #[test]
    fn builds_nested_loops() {
        let mut b = KernelBuilder::new("t");
        let n = b.scalar_param("n", ScalarTy::I64);
        let a = b.array_param("a", ScalarTy::F32);
        let i = b.fresh_loop_var("i");
        let j = b.fresh_loop_var("j");
        b.for_loop(i, Expr::Int(0), Expr::Var(n), 1, |b| {
            b.for_loop(j, Expr::Int(0), Expr::Var(n), 1, |b| {
                b.store(
                    a,
                    Expr::bin(
                        BinOp::Add,
                        Expr::bin(BinOp::Mul, Expr::Var(i), Expr::Var(n)),
                        Expr::Var(j),
                    ),
                    Expr::Float(0.0),
                );
            });
        });
        let k = b.finish();
        assert_eq!(k.body.len(), 1);
        assert_eq!(k.body[0].loop_depth(), 2);
        assert_eq!(k.stmt_count(), 3);
        assert_eq!(k.var_named("n"), Some(n));
        assert_eq!(k.array_named("a"), Some(a));
    }

    #[test]
    #[should_panic(expected = "duplicate scalar name")]
    fn rejects_duplicate_names() {
        let mut b = KernelBuilder::new("t");
        b.scalar_param("n", ScalarTy::I64);
        b.local("n", ScalarTy::F32);
    }
}

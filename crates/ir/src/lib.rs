//! # vapor-ir — scalar kernel IR
//!
//! The scalar intermediate representation consumed by the Vapor SIMD
//! offline vectorizer: structured, counted loop nests over typed arrays,
//! exactly the shape the paper's kernels take after loop-nest
//! normalization (§II of the paper).
//!
//! The crate also hosts the **reference interpreter** ([`interpret`]) used
//! as the correctness oracle by every other crate, and the shared
//! element-operation semantics ([`sem`]) reused by the virtual SIMD
//! machine so that oracle and simulated hardware agree by construction.
//!
//! # Examples
//!
//! ```
//! use vapor_ir::{KernelBuilder, ScalarTy, Expr, BinOp, Bindings, ArrayData, interpret};
//!
//! # fn main() -> Result<(), vapor_ir::IrError> {
//! let mut b = KernelBuilder::new("dscal");
//! let n = b.scalar_param("n", ScalarTy::I64);
//! let alpha = b.scalar_param("alpha", ScalarTy::F32);
//! let x = b.array_param("x", ScalarTy::F32);
//! let i = b.fresh_loop_var("i");
//! b.for_loop(i, Expr::Int(0), Expr::Var(n), 1, |b| {
//!     b.store(x, Expr::Var(i),
//!             Expr::bin(BinOp::Mul, Expr::Var(alpha), Expr::load(x, Expr::Var(i))));
//! });
//! let kernel = b.finish();
//!
//! let mut env = Bindings::new();
//! env.set_int("n", 3)
//!    .set_float("alpha", 2.0)
//!    .set_array("x", ArrayData::from_floats(ScalarTy::F32, &[1.0, 2.0, 3.0]));
//! interpret(&kernel, &mut env)?;
//! assert_eq!(env.array("x").unwrap().get(2).as_float(), 6.0);
//! # Ok(())
//! # }
//! ```

pub mod builder;
pub mod expr;
pub mod interp;
pub mod kernel;
pub mod pretty;
pub mod sem;
pub mod stmt;
pub mod ty;
pub mod validate;

pub use builder::KernelBuilder;
pub use expr::{ArrayId, Expr, VarId};
pub use interp::{interpret, interpret_arrays, ArrayData, Bindings};
pub use kernel::{ArrayDecl, ArrayKind, Kernel, VarDecl, VarKind};
pub use pretty::{print_expr, print_kernel};
pub use sem::{eval_bin, eval_cast, eval_un, read_elem, write_elem, BinOp, UnOp, Value};
pub use stmt::Stmt;
pub use ty::ScalarTy;
pub use validate::{check_expr, infer_expr, validate, IrError};

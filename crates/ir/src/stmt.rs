//! Statements of the scalar kernel IR: structured loop nests over arrays.
//!
//! The IR is deliberately restricted to the shape the paper's offline
//! vectorizer consumes after loop-nest normalization: counted `for` loops
//! (lower bound, exclusive upper bound, constant step), scalar
//! assignments, and array stores. There is no unstructured control flow;
//! data-dependent control is expressed with `min`/`max`/`select`-style
//! arithmetic, mirroring if-converted code.

use crate::expr::{ArrayId, Expr, VarId};

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `for (var = lo; var < hi; var += step) body`
    ///
    /// The loop variable is a dedicated `Loop`-kind scalar of type `long`;
    /// it must not be assigned inside the body.
    For {
        /// Induction variable.
        var: VarId,
        /// Inclusive lower bound.
        lo: Expr,
        /// Exclusive upper bound.
        hi: Expr,
        /// Constant positive step.
        step: i64,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `var = value` for a scalar local.
    Assign {
        /// Destination scalar (must be a `Local`).
        var: VarId,
        /// Right-hand side.
        value: Expr,
    },
    /// `array[index] = value`.
    Store {
        /// Destination array.
        array: ArrayId,
        /// Element index.
        index: Expr,
        /// Value stored (converted to the array element type).
        value: Expr,
    },
}

impl Stmt {
    /// Visit this statement and all nested statements, pre-order.
    pub fn walk(&self, f: &mut impl FnMut(&Stmt)) {
        f(self);
        if let Stmt::For { body, .. } = self {
            for s in body {
                s.walk(f);
            }
        }
    }

    /// Visit every expression contained in this statement subtree.
    pub fn walk_exprs(&self, f: &mut impl FnMut(&Expr)) {
        self.walk(&mut |s| match s {
            Stmt::For { lo, hi, .. } => {
                lo.walk(f);
                hi.walk(f);
            }
            Stmt::Assign { value, .. } => value.walk(f),
            Stmt::Store { index, value, .. } => {
                index.walk(f);
                value.walk(f);
            }
        });
    }

    /// Maximum loop-nest depth of this statement (0 for non-loops).
    pub fn loop_depth(&self) -> usize {
        match self {
            Stmt::For { body, .. } => 1 + body.iter().map(Stmt::loop_depth).max().unwrap_or(0),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sem::BinOp;

    fn loop1(var: u32, body: Vec<Stmt>) -> Stmt {
        Stmt::For {
            var: VarId(var),
            lo: Expr::Int(0),
            hi: Expr::Int(8),
            step: 1,
            body,
        }
    }

    #[test]
    fn depth_counts_nesting() {
        let s = loop1(
            0,
            vec![loop1(
                1,
                vec![Stmt::Assign {
                    var: VarId(2),
                    value: Expr::Int(1),
                }],
            )],
        );
        assert_eq!(s.loop_depth(), 2);
        assert_eq!(
            Stmt::Assign {
                var: VarId(2),
                value: Expr::Int(1)
            }
            .loop_depth(),
            0
        );
    }

    #[test]
    fn walk_exprs_sees_bounds_and_bodies() {
        let s = loop1(
            0,
            vec![Stmt::Store {
                array: ArrayId(0),
                index: Expr::Var(VarId(0)),
                value: Expr::bin(BinOp::Add, Expr::Var(VarId(0)), Expr::Int(1)),
            }],
        );
        let mut count = 0;
        s.walk_exprs(&mut |_| count += 1);
        // lo, hi, index, (add, var, int)
        assert_eq!(count, 6);
    }
}

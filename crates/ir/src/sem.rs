//! Shared evaluation semantics for scalar operations.
//!
//! Both the reference IR interpreter and the virtual SIMD machine in
//! `vapor-targets` evaluate element operations through these functions, so
//! the correctness oracle and the simulated hardware agree *by
//! construction* on wrapping, conversion and edge-case behaviour.
//!
//! Defined behaviour choices (where C leaves them undefined or
//! implementation-defined):
//!
//! * integer arithmetic wraps modulo 2^width;
//! * shift amounts are masked by `width - 1`;
//! * integer division by zero yields `0` (and `x / -1` wraps);
//! * float→int conversion saturates (Rust `as` semantics);
//! * `min`/`max` on floats follow `f64::min`/`f64::max`.

use crate::ty::ScalarTy;

/// A dynamically-typed scalar value.
///
/// The static type is tracked alongside (in the IR or the VM register
/// class); `Value` only distinguishes the integer and float domains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integer domain, stored sign-extended in an `i64`.
    Int(i64),
    /// Float domain.
    Float(f64),
}

impl Value {
    /// The integer payload.
    ///
    /// # Panics
    /// Panics if the value is in the float domain.
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Float(v) => panic!("expected int value, found float {v}"),
        }
    }

    /// The float payload.
    ///
    /// # Panics
    /// Panics if the value is in the integer domain.
    pub fn as_float(self) -> f64 {
        match self {
            Value::Float(v) => v,
            Value::Int(v) => panic!("expected float value, found int {v}"),
        }
    }

    /// Zero of the given type.
    pub fn zero(ty: ScalarTy) -> Value {
        if ty.is_float() {
            Value::Float(0.0)
        } else {
            Value::Int(0)
        }
    }

    /// Whether the value is non-zero (conditions are integers).
    pub fn is_truthy(self) -> bool {
        match self {
            Value::Int(v) => v != 0,
            Value::Float(v) => v != 0.0,
        }
    }
}

/// Binary operators of the kernel language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication (wrapping for integers).
    Mul,
    /// Division (see module docs for integer edge cases).
    Div,
    /// Shift left (integers only).
    Shl,
    /// Shift right: arithmetic for signed, logical for unsigned.
    Shr,
    /// Bitwise and (integers only).
    And,
    /// Bitwise or (integers only).
    Or,
    /// Bitwise xor (integers only).
    Xor,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Comparison: equal (yields 0/1 int).
    CmpEq,
    /// Comparison: less-than (yields 0/1 int).
    CmpLt,
}

impl BinOp {
    /// Mini-C spelling where one exists (`Min`/`Max`/cmp are builtins).
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::CmpEq => "==",
            BinOp::CmpLt => "<",
        }
    }

    /// Whether the operator only applies to integer operands.
    pub fn int_only(self) -> bool {
        matches!(
            self,
            BinOp::Shl | BinOp::Shr | BinOp::And | BinOp::Or | BinOp::Xor
        )
    }

    /// Whether the result is a 0/1 integer regardless of operand type.
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::CmpEq | BinOp::CmpLt)
    }

    /// Whether the op is commutative (used by pattern matching in the
    /// vectorizer, e.g. reduction and dot-product recognition).
    pub fn commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::Min
                | BinOp::Max
                | BinOp::CmpEq
        )
    }
}

/// Unary operators of the kernel language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Absolute value (wrapping at the signed minimum).
    Abs,
    /// Square root (floats only).
    Sqrt,
}

impl UnOp {
    /// Mini-C spelling.
    pub fn name(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Abs => "abs",
            UnOp::Sqrt => "sqrt",
        }
    }
}

/// Truncate/sign-extend an `i64` payload to the integer type `ty`,
/// returning the canonical sign-extended representation.
#[inline]
pub fn wrap_int(ty: ScalarTy, v: i64) -> i64 {
    match ty {
        ScalarTy::I8 => v as i8 as i64,
        ScalarTy::I16 => v as i16 as i64,
        ScalarTy::I32 => v as i32 as i64,
        ScalarTy::I64 => v,
        ScalarTy::U8 => v as u8 as i64,
        ScalarTy::U16 => v as u16 as i64,
        ScalarTy::U32 => v as u32 as i64,
        ScalarTy::F32 | ScalarTy::F64 => panic!("wrap_int on float type {ty}"),
    }
}

#[inline]
fn shift_mask(ty: ScalarTy) -> u32 {
    (ty.size() as u32 * 8) - 1
}

/// Evaluate a binary operation at type `ty` with the semantics in the
/// module docs. Comparison operators return `Value::Int(0|1)`.
#[inline]
pub fn eval_bin(op: BinOp, ty: ScalarTy, a: Value, b: Value) -> Value {
    if ty.is_float() {
        let (x, y) = (a.as_float(), b.as_float());
        let r = match op {
            BinOp::Add => x + y,
            BinOp::Sub => x - y,
            BinOp::Mul => x * y,
            BinOp::Div => x / y,
            BinOp::Min => x.min(y),
            BinOp::Max => x.max(y),
            BinOp::CmpEq => return Value::Int((x == y) as i64),
            BinOp::CmpLt => return Value::Int((x < y) as i64),
            _ => panic!("integer-only op {op:?} at float type {ty}"),
        };
        let r = if ty == ScalarTy::F32 {
            r as f32 as f64
        } else {
            r
        };
        Value::Float(r)
    } else {
        let (x, y) = (a.as_int(), b.as_int());
        let r = match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Div => {
                if y == 0 {
                    0
                } else {
                    x.wrapping_div(y)
                }
            }
            BinOp::Shl => x.wrapping_shl(y as u32 & shift_mask(ty)),
            BinOp::Shr => {
                let amt = y as u32 & shift_mask(ty);
                if ty.is_unsigned_int() {
                    // Logical shift on the unsigned payload.
                    let mask = if ty.size() == 8 {
                        u64::MAX
                    } else {
                        (1u64 << (ty.size() * 8)) - 1
                    };
                    (((x as u64) & mask) >> amt) as i64
                } else {
                    x.wrapping_shr(amt)
                }
            }
            BinOp::And => x & y,
            BinOp::Or => x | y,
            BinOp::Xor => x ^ y,
            BinOp::Min => x.min(y),
            BinOp::Max => x.max(y),
            BinOp::CmpEq => return Value::Int((x == y) as i64),
            BinOp::CmpLt => return Value::Int((x < y) as i64),
        };
        Value::Int(wrap_int(ty, r))
    }
}

/// Evaluate a unary operation at type `ty`.
#[inline]
pub fn eval_un(op: UnOp, ty: ScalarTy, a: Value) -> Value {
    if ty.is_float() {
        let x = a.as_float();
        let r = match op {
            UnOp::Neg => -x,
            UnOp::Abs => x.abs(),
            UnOp::Sqrt => x.sqrt(),
        };
        let r = if ty == ScalarTy::F32 {
            r as f32 as f64
        } else {
            r
        };
        Value::Float(r)
    } else {
        let x = a.as_int();
        let r = match op {
            UnOp::Neg => x.wrapping_neg(),
            UnOp::Abs => x.wrapping_abs(),
            UnOp::Sqrt => panic!("sqrt on integer type {ty}"),
        };
        Value::Int(wrap_int(ty, r))
    }
}

/// Convert a value from type `from` to type `to`.
///
/// Integer→integer wraps; integer→float is exact where representable;
/// float→integer saturates (Rust `as`); `f64`→`f32` rounds.
#[inline]
pub fn eval_cast(from: ScalarTy, to: ScalarTy, v: Value) -> Value {
    match (from.is_float(), to.is_float()) {
        (false, false) => Value::Int(wrap_int(to, v.as_int())),
        (false, true) => {
            let f = v.as_int() as f64;
            let f = if to == ScalarTy::F32 {
                f as f32 as f64
            } else {
                f
            };
            Value::Float(f)
        }
        (true, false) => {
            let f = v.as_float();
            let i = match to {
                ScalarTy::I8 => f as i8 as i64,
                ScalarTy::I16 => f as i16 as i64,
                ScalarTy::I32 => f as i32 as i64,
                ScalarTy::I64 => f as i64,
                ScalarTy::U8 => f as u8 as i64,
                ScalarTy::U16 => f as u16 as i64,
                ScalarTy::U32 => f as u32 as i64,
                _ => unreachable!(),
            };
            Value::Int(i)
        }
        (true, true) => {
            let f = v.as_float();
            let f = if to == ScalarTy::F32 {
                f as f32 as f64
            } else {
                f
            };
            Value::Float(f)
        }
    }
}

/// Read one element of type `ty` from `bytes` at byte offset `off`
/// (little-endian), as the canonical [`Value`].
///
/// # Panics
/// Panics if the access is out of bounds.
#[inline]
pub fn read_elem(ty: ScalarTy, bytes: &[u8], off: usize) -> Value {
    let s = ty.size();
    let raw = &bytes[off..off + s];
    match ty {
        ScalarTy::I8 => Value::Int(raw[0] as i8 as i64),
        ScalarTy::U8 => Value::Int(raw[0] as i64),
        ScalarTy::I16 => Value::Int(i16::from_le_bytes([raw[0], raw[1]]) as i64),
        ScalarTy::U16 => Value::Int(u16::from_le_bytes([raw[0], raw[1]]) as i64),
        ScalarTy::I32 => Value::Int(i32::from_le_bytes(raw.try_into().unwrap()) as i64),
        ScalarTy::U32 => Value::Int(u32::from_le_bytes(raw.try_into().unwrap()) as i64),
        ScalarTy::I64 => Value::Int(i64::from_le_bytes(raw.try_into().unwrap())),
        ScalarTy::F32 => Value::Float(f32::from_le_bytes(raw.try_into().unwrap()) as f64),
        ScalarTy::F64 => Value::Float(f64::from_le_bytes(raw.try_into().unwrap())),
    }
}

/// Write one element of type `ty` into `bytes` at byte offset `off`
/// (little-endian), wrapping/rounding `v` to fit.
///
/// # Panics
/// Panics if the access is out of bounds.
#[inline]
pub fn write_elem(ty: ScalarTy, bytes: &mut [u8], off: usize, v: Value) {
    match ty {
        ScalarTy::I8 | ScalarTy::U8 => bytes[off] = v.as_int() as u8,
        ScalarTy::I16 | ScalarTy::U16 => {
            bytes[off..off + 2].copy_from_slice(&(v.as_int() as i16).to_le_bytes())
        }
        ScalarTy::I32 | ScalarTy::U32 => {
            bytes[off..off + 4].copy_from_slice(&(v.as_int() as i32).to_le_bytes())
        }
        ScalarTy::I64 => bytes[off..off + 8].copy_from_slice(&v.as_int().to_le_bytes()),
        ScalarTy::F32 => bytes[off..off + 4].copy_from_slice(&(v.as_float() as f32).to_le_bytes()),
        ScalarTy::F64 => bytes[off..off + 8].copy_from_slice(&v.as_float().to_le_bytes()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_arith_wraps() {
        let v = eval_bin(BinOp::Add, ScalarTy::I8, Value::Int(127), Value::Int(1));
        assert_eq!(v, Value::Int(-128));
        let v = eval_bin(BinOp::Mul, ScalarTy::U8, Value::Int(16), Value::Int(16));
        assert_eq!(v, Value::Int(0));
    }

    #[test]
    fn div_by_zero_is_zero() {
        let v = eval_bin(BinOp::Div, ScalarTy::I32, Value::Int(42), Value::Int(0));
        assert_eq!(v, Value::Int(0));
    }

    #[test]
    fn unsigned_shr_is_logical() {
        let v = eval_bin(BinOp::Shr, ScalarTy::U8, Value::Int(0x80), Value::Int(1));
        assert_eq!(v, Value::Int(0x40));
        let v = eval_bin(BinOp::Shr, ScalarTy::I8, Value::Int(-128), Value::Int(1));
        assert_eq!(v, Value::Int(-64));
    }

    #[test]
    fn shift_amount_masked() {
        let v = eval_bin(BinOp::Shl, ScalarTy::I16, Value::Int(1), Value::Int(17));
        assert_eq!(v, Value::Int(2));
    }

    #[test]
    fn f32_rounds_through() {
        let v = eval_bin(
            BinOp::Add,
            ScalarTy::F32,
            Value::Float(0.1),
            Value::Float(0.2),
        );
        assert_eq!(v.as_float(), (0.1f32 + 0.2f32) as f64);
    }

    #[test]
    fn cast_saturates_float_to_int() {
        let v = eval_cast(ScalarTy::F32, ScalarTy::I8, Value::Float(1000.0));
        assert_eq!(v, Value::Int(127));
        let v = eval_cast(ScalarTy::F64, ScalarTy::U8, Value::Float(-5.0));
        assert_eq!(v, Value::Int(0));
    }

    #[test]
    fn abs_wraps_at_min() {
        let v = eval_un(UnOp::Abs, ScalarTy::I8, Value::Int(-128));
        assert_eq!(v, Value::Int(-128));
    }

    #[test]
    fn elem_roundtrip_all_types() {
        let mut buf = vec![0u8; 16];
        for ty in ScalarTy::ALL {
            let v = if ty.is_float() {
                Value::Float(-2.5)
            } else {
                Value::Int(-7)
            };
            write_elem(ty, &mut buf, 8 - ty.size(), v);
            let back = read_elem(ty, &buf, 8 - ty.size());
            if ty.is_unsigned_int() {
                assert_eq!(back, Value::Int(wrap_int(ty, -7)), "{ty:?}");
            } else {
                assert_eq!(back, v, "{ty:?}");
            }
        }
    }
}

//! Mini-C pretty printer. Output re-parses with `vapor-frontend`
//! (round-trip tested there).

use std::fmt::Write as _;

use crate::expr::Expr;
use crate::kernel::{ArrayKind, Kernel, VarKind};
use crate::sem::{BinOp, UnOp};
use crate::stmt::Stmt;

/// Operator precedence (higher binds tighter). Must match the parser.
pub fn precedence(op: BinOp) -> u8 {
    match op {
        BinOp::CmpEq | BinOp::CmpLt => 1,
        BinOp::Or => 2,
        BinOp::Xor => 3,
        BinOp::And => 4,
        BinOp::Shl | BinOp::Shr => 5,
        BinOp::Add | BinOp::Sub => 6,
        BinOp::Mul | BinOp::Div => 7,
        BinOp::Min | BinOp::Max => 8, // rendered as calls; never ambiguous
    }
}

fn write_expr(out: &mut String, k: &Kernel, e: &Expr, parent_prec: u8) {
    match e {
        Expr::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::Float(v) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
        }
        Expr::Var(v) => out.push_str(&k.var(*v).name),
        Expr::Load { array, index } => {
            out.push_str(&k.array(*array).name);
            out.push('[');
            write_expr(out, k, index, 0);
            out.push(']');
        }
        Expr::Bin { op, lhs, rhs } => match op {
            BinOp::Min | BinOp::Max => {
                out.push_str(op.symbol());
                out.push('(');
                write_expr(out, k, lhs, 0);
                out.push_str(", ");
                write_expr(out, k, rhs, 0);
                out.push(')');
            }
            _ => {
                let p = precedence(*op);
                if p < parent_prec {
                    out.push('(');
                }
                write_expr(out, k, lhs, p);
                let _ = write!(out, " {} ", op.symbol());
                // Left-associative grammar: right operand needs one more level.
                write_expr(out, k, rhs, p + 1);
                if p < parent_prec {
                    out.push(')');
                }
            }
        },
        Expr::Un { op, arg } => match op {
            UnOp::Neg => {
                out.push('-');
                write_expr(out, k, arg, 9);
            }
            UnOp::Abs | UnOp::Sqrt => {
                out.push_str(op.name());
                out.push('(');
                write_expr(out, k, arg, 0);
                out.push(')');
            }
        },
        Expr::Cast { ty, arg } => {
            let _ = write!(out, "({ty})");
            write_expr(out, k, arg, 9);
        }
    }
}

fn write_stmt(out: &mut String, k: &Kernel, s: &Stmt, indent: usize) {
    let pad = "  ".repeat(indent);
    match s {
        Stmt::For {
            var,
            lo,
            hi,
            step,
            body,
        } => {
            let name = &k.var(*var).name;
            let _ = write!(out, "{pad}for (long {name} = ");
            write_expr(out, k, lo, 0);
            let _ = write!(out, "; {name} < ");
            write_expr(out, k, hi, 0);
            if *step == 1 {
                let _ = writeln!(out, "; {name}++) {{");
            } else {
                let _ = writeln!(out, "; {name} += {step}) {{");
            }
            for st in body {
                write_stmt(out, k, st, indent + 1);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::Assign { var, value } => {
            let _ = write!(out, "{pad}{} = ", k.var(*var).name);
            write_expr(out, k, value, 0);
            out.push_str(";\n");
        }
        Stmt::Store {
            array,
            index,
            value,
        } => {
            let _ = write!(out, "{pad}{}[", k.array(*array).name);
            write_expr(out, k, index, 0);
            out.push_str("] = ");
            write_expr(out, k, value, 0);
            out.push_str(";\n");
        }
    }
}

/// Render a kernel as mini-C source text.
pub fn print_kernel(k: &Kernel) -> String {
    let mut out = String::new();
    let _ = write!(out, "kernel {}(", k.name);
    let mut first = true;
    for v in k.vars.iter().filter(|v| v.kind == VarKind::Param) {
        if !first {
            out.push_str(", ");
        }
        first = false;
        let _ = write!(out, "{} {}", v.ty, v.name);
    }
    for a in &k.arrays {
        if !first {
            out.push_str(", ");
        }
        first = false;
        let prefix = match a.kind {
            ArrayKind::Global => "global ",
            ArrayKind::PointerParam => "",
        };
        let _ = write!(out, "{prefix}{} {}[]", a.elem, a.name);
    }
    out.push_str(") {\n");
    for v in k.vars.iter().filter(|v| v.kind == VarKind::Local) {
        let _ = writeln!(out, "  {} {};", v.ty, v.name);
    }
    for s in &k.body {
        write_stmt(&mut out, k, s, 1);
    }
    out.push_str("}\n");
    out
}

/// Render one expression (handy in error messages and debug output).
pub fn print_expr(k: &Kernel, e: &Expr) -> String {
    let mut s = String::new();
    write_expr(&mut s, k, e, 0);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::ty::ScalarTy;

    #[test]
    fn prints_saxpy_like_c() {
        let mut b = KernelBuilder::new("saxpy");
        let n = b.scalar_param("n", ScalarTy::I64);
        let a = b.scalar_param("alpha", ScalarTy::F32);
        let x = b.array_param("x", ScalarTy::F32);
        let y = b.array_param("y", ScalarTy::F32);
        let i = b.fresh_loop_var("i");
        b.for_loop(i, Expr::Int(0), Expr::Var(n), 1, |b| {
            b.store(
                y,
                Expr::Var(i),
                Expr::bin(
                    BinOp::Add,
                    Expr::bin(BinOp::Mul, Expr::Var(a), Expr::load(x, Expr::Var(i))),
                    Expr::load(y, Expr::Var(i)),
                ),
            );
        });
        let k = b.finish();
        let text = print_kernel(&k);
        assert!(text.contains("kernel saxpy(long n, float alpha, float x[], float y[]) {"));
        assert!(text.contains("y[i] = alpha * x[i] + y[i];"));
    }

    #[test]
    fn parenthesizes_by_precedence() {
        let mut b = KernelBuilder::new("t");
        let x = b.scalar_param("x", ScalarTy::I32);
        let k = b.finish();
        // (x + x) * x needs parens; x + x * x does not.
        let sum = Expr::bin(BinOp::Add, Expr::Var(x), Expr::Var(x));
        let e = Expr::bin(BinOp::Mul, sum.clone(), Expr::Var(x));
        assert_eq!(print_expr(&k, &e), "(x + x) * x");
        let e = Expr::bin(
            BinOp::Add,
            Expr::Var(x),
            Expr::bin(BinOp::Mul, Expr::Var(x), Expr::Var(x)),
        );
        assert_eq!(print_expr(&k, &e), "x + x * x");
        // Left-assoc: a - (b - c) must keep parens.
        let e = Expr::bin(
            BinOp::Sub,
            Expr::Var(x),
            Expr::bin(BinOp::Sub, Expr::Var(x), Expr::Var(x)),
        );
        assert_eq!(print_expr(&k, &e), "x - (x - x)");
    }

    #[test]
    fn min_max_render_as_calls() {
        let mut b = KernelBuilder::new("t");
        let x = b.scalar_param("x", ScalarTy::I32);
        let k = b.finish();
        let e = Expr::bin(BinOp::Max, Expr::Var(x), Expr::Int(0));
        assert_eq!(print_expr(&k, &e), "max(x, 0)");
    }
}

//! Deterministic stand-in for the tiny subset of the `rand` crate API the
//! workspace uses (`StdRng::from_seed` + `gen_range` over `f64`/`i64`
//! ranges). The build environment has no network access, so the real
//! crate cannot be fetched; input generation only needs *reproducible*
//! pseudo-randomness, not cryptographic quality, and every consumer
//! checks results against the reference oracle rather than golden
//! values, so the exact stream does not matter.
//!
//! The generator is xoshiro256++ (public domain, Blackman & Vigna),
//! seeded through the same `[u8; 32]` interface as `rand::rngs::StdRng`.

/// Seedable generator trait (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed;

    /// Construct from a fixed seed.
    fn from_seed(seed: Self::Seed) -> Self;
}

/// Range sampling trait (mirrors the used part of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample uniformly from `range` (half-open, like `rand`).
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range)
    }
}

/// Types samplable from a half-open range.
pub trait SampleRange: Sized {
    /// Sample uniformly from `range` using `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

impl SampleRange for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: std::ops::Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

impl SampleRange for i64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: std::ops::Range<i64>) -> i64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end.wrapping_sub(range.start) as u64;
        // Modulo bias is ~span/2^64 — irrelevant for test-input spans.
        range.start.wrapping_add((rng.next_u64() % span) as i64)
    }
}

impl SampleRange for i32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: std::ops::Range<i32>) -> i32 {
        i64::sample(rng, range.start as i64..range.end as i64) as i32
    }
}

impl SampleRange for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: std::ops::Range<usize>) -> usize {
        i64::sample(rng, range.start as i64..range.end as i64) as usize
    }
}

/// The `rand::rngs` module shape.
pub mod rngs {
    /// xoshiro256++ behind the `StdRng` name.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl super::SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state would be a fixed point; splitmix the seed
            // words so any seed (including zeros) produces a sound state.
            let mut sm =
                s[0] ^ s[1].rotate_left(17) ^ s[2].rotate_left(31) ^ s[3] ^ 0x9e3779b97f4a7c15;
            for w in &mut s {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                *w ^= z ^ (z >> 31) | 1;
            }
            StdRng { s }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::from_seed([7; 32]);
        let mut b = StdRng::from_seed([7; 32]);
        let mut c = StdRng::from_seed([8; 32]);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = StdRng::from_seed([0; 32]);
        for _ in 0..1000 {
            let f = r.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&f));
            let i = r.gen_range(0..256_i64);
            assert!((0..256).contains(&i));
        }
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = StdRng::from_seed([0; 32]);
        let vals: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert!(vals.iter().any(|&v| v != 0));
        assert_ne!(vals[0], vals[1]);
    }
}

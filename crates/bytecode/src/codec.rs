//! Binary encoding and decoding of bytecode modules.
//!
//! The encoding is a compact tagged byte stream (LEB128 varints, zigzag
//! signed integers). It serves two purposes: it is the artifact whose
//! size the §V-A(c) experiment measures (vectorized vs. scalar bytecode,
//! ~5× in the paper), and it is the interoperability boundary between
//! the offline and online toolchains.

use std::fmt;

use vapor_ir::{ArrayKind, BinOp, ScalarTy, UnOp};

use crate::func::{BcArray, BcFunction, BcModule, BcParam};
use crate::op::{Op, ShiftAmt};
use crate::stmt::{BcStmt, GuardCond, LoopKind, OpClass, Step};
use crate::ty::{Addr, ArraySym, BcTy, Operand, Reg};

/// Magic bytes at the start of every encoded module (`"VSBC"`).
pub const MAGIC: [u8; 4] = *b"VSBC";
/// Format version.
pub const VERSION: u8 = 1;

const BINOPS: [BinOp; 13] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Shl,
    BinOp::Shr,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Min,
    BinOp::Max,
    BinOp::CmpEq,
    BinOp::CmpLt,
];
const UNOPS: [UnOp; 3] = [UnOp::Neg, UnOp::Abs, UnOp::Sqrt];

/// Decoding error with stream offset.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeError {
    /// Byte offset where decoding failed.
    pub offset: usize,
    /// Explanation.
    pub msg: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

struct W {
    buf: Vec<u8>,
}

impl W {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn varu(&mut self, mut v: u64) {
        loop {
            let b = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(b);
                break;
            }
            self.buf.push(b | 0x80);
        }
    }
    fn vari(&mut self, v: i64) {
        self.varu(((v << 1) ^ (v >> 63)) as u64);
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.varu(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn ty(&mut self, t: ScalarTy) {
        self.u8(t.encoding());
    }
    fn bcty(&mut self, t: BcTy) {
        match t {
            BcTy::Scalar(e) => {
                self.u8(0);
                self.ty(e);
            }
            BcTy::Vec(e) => {
                self.u8(1);
                self.ty(e);
            }
            BcTy::RealignToken => self.u8(2),
        }
    }
    fn reg(&mut self, r: Reg) {
        self.varu(r.0 as u64);
    }
    fn opt_reg(&mut self, r: Option<Reg>) {
        match r {
            Some(r) => {
                self.u8(1);
                self.reg(r);
            }
            None => self.u8(0),
        }
    }
    fn operand(&mut self, o: &Operand) {
        match o {
            Operand::Reg(r) => {
                self.u8(0);
                self.reg(*r);
            }
            Operand::ConstI(v) => {
                self.u8(1);
                self.vari(*v);
            }
            Operand::ConstF(v) => {
                self.u8(2);
                self.f64(*v);
            }
        }
    }
    fn addr(&mut self, a: &Addr) {
        self.varu(a.base.0 as u64);
        self.operand(&a.index);
        self.vari(a.offset);
    }
    fn binop(&mut self, op: BinOp) {
        self.u8(BINOPS.iter().position(|&b| b == op).unwrap() as u8);
    }
    fn unop(&mut self, op: UnOp) {
        self.u8(UNOPS.iter().position(|&b| b == op).unwrap() as u8);
    }
    fn amt(&mut self, a: &ShiftAmt) {
        match a {
            ShiftAmt::Scalar(o) => {
                self.u8(0);
                self.operand(o);
            }
            ShiftAmt::PerLane(r) => {
                self.u8(1);
                self.reg(*r);
            }
        }
    }

    fn op(&mut self, op: &Op) {
        match op {
            Op::GetVf { ty, group } => {
                self.u8(0);
                self.ty(*ty);
                self.varu(*group as u64);
            }
            Op::GetAlignLimit(t) => {
                self.u8(1);
                self.ty(*t);
            }
            Op::LoopBound {
                vect,
                scalar,
                group,
            } => {
                self.u8(2);
                self.operand(vect);
                self.operand(scalar);
                self.varu(*group as u64);
            }
            Op::InitUniform(t, v) => {
                self.u8(3);
                self.ty(*t);
                self.operand(v);
            }
            Op::InitAffine(t, v, i) => {
                self.u8(4);
                self.ty(*t);
                self.operand(v);
                self.operand(i);
            }
            Op::InitReduc(t, v, d) => {
                self.u8(5);
                self.ty(*t);
                self.operand(v);
                self.operand(d);
            }
            Op::ReducPlus(t, r) => {
                self.u8(6);
                self.ty(*t);
                self.reg(*r);
            }
            Op::ReducMax(t, r) => {
                self.u8(7);
                self.ty(*t);
                self.reg(*r);
            }
            Op::ReducMin(t, r) => {
                self.u8(8);
                self.ty(*t);
                self.reg(*r);
            }
            Op::DotProduct(t, a, b, c) => {
                self.u8(9);
                self.ty(*t);
                self.reg(*a);
                self.reg(*b);
                self.reg(*c);
            }
            Op::WidenMultHi(t, a, b) => {
                self.u8(10);
                self.ty(*t);
                self.reg(*a);
                self.reg(*b);
            }
            Op::WidenMultLo(t, a, b) => {
                self.u8(11);
                self.ty(*t);
                self.reg(*a);
                self.reg(*b);
            }
            Op::Pack(t, a, b) => {
                self.u8(12);
                self.ty(*t);
                self.reg(*a);
                self.reg(*b);
            }
            Op::UnpackHi(t, a) => {
                self.u8(13);
                self.ty(*t);
                self.reg(*a);
            }
            Op::UnpackLo(t, a) => {
                self.u8(14);
                self.ty(*t);
                self.reg(*a);
            }
            Op::CvtInt2Fp(t, a) => {
                self.u8(15);
                self.ty(*t);
                self.reg(*a);
            }
            Op::CvtFp2Int(t, a) => {
                self.u8(16);
                self.ty(*t);
                self.reg(*a);
            }
            Op::VBin(b, t, x, y) => {
                self.u8(17);
                self.binop(*b);
                self.ty(*t);
                self.reg(*x);
                self.reg(*y);
            }
            Op::VUn(u, t, x) => {
                self.u8(18);
                self.unop(*u);
                self.ty(*t);
                self.reg(*x);
            }
            Op::VShl(t, v, a) => {
                self.u8(19);
                self.ty(*t);
                self.reg(*v);
                self.amt(a);
            }
            Op::VShr(t, v, a) => {
                self.u8(20);
                self.ty(*t);
                self.reg(*v);
                self.amt(a);
            }
            Op::Extract {
                ty,
                stride,
                offset,
                srcs,
            } => {
                self.u8(21);
                self.ty(*ty);
                self.u8(*stride);
                self.u8(*offset);
                self.varu(srcs.len() as u64);
                for r in srcs {
                    self.reg(*r);
                }
            }
            Op::InterleaveHi(t, a, b) => {
                self.u8(22);
                self.ty(*t);
                self.reg(*a);
                self.reg(*b);
            }
            Op::InterleaveLo(t, a, b) => {
                self.u8(23);
                self.ty(*t);
                self.reg(*a);
                self.reg(*b);
            }
            Op::ALoad(t, a) => {
                self.u8(24);
                self.ty(*t);
                self.addr(a);
            }
            Op::AlignLoad(t, a) => {
                self.u8(25);
                self.ty(*t);
                self.addr(a);
            }
            Op::GetRt {
                ty,
                addr,
                mis,
                modulo,
            } => {
                self.u8(26);
                self.ty(*ty);
                self.addr(addr);
                self.varu(*mis as u64);
                self.varu(*modulo as u64);
            }
            Op::RealignLoad {
                ty,
                lo,
                hi,
                rt,
                addr,
                mis,
                modulo,
            } => {
                self.u8(27);
                self.ty(*ty);
                self.opt_reg(*lo);
                self.opt_reg(*hi);
                self.opt_reg(*rt);
                self.addr(addr);
                self.varu(*mis as u64);
                self.varu(*modulo as u64);
            }
            Op::SBin(b, t, x, y) => {
                self.u8(28);
                self.binop(*b);
                self.ty(*t);
                self.operand(x);
                self.operand(y);
            }
            Op::SUn(u, t, x) => {
                self.u8(29);
                self.unop(*u);
                self.ty(*t);
                self.operand(x);
            }
            Op::SCast { from, to, arg } => {
                self.u8(30);
                self.ty(*from);
                self.ty(*to);
                self.operand(arg);
            }
            Op::SLoad(t, a) => {
                self.u8(31);
                self.ty(*t);
                self.addr(a);
            }
            Op::Copy(o) => {
                self.u8(32);
                self.operand(o);
            }
        }
    }

    fn guard(&mut self, g: &GuardCond) {
        match g {
            GuardCond::TypeSupported(t) => {
                self.u8(0);
                self.ty(*t);
            }
            GuardCond::BaseAligned(a) => {
                self.u8(1);
                self.varu(a.0 as u64);
            }
            GuardCond::NoAlias(a, b) => {
                self.u8(2);
                self.varu(a.0 as u64);
                self.varu(b.0 as u64);
            }
            GuardCond::VsAtLeast(v) => {
                self.u8(3);
                self.varu(*v as u64);
            }
            GuardCond::StrideAligned { array, stride, ty } => {
                self.u8(5);
                self.varu(array.0 as u64);
                self.operand(stride);
                self.ty(*ty);
            }
            GuardCond::OpsSupported(cs) => {
                self.u8(6);
                self.varu(cs.len() as u64);
                for c in cs {
                    self.u8(match c {
                        OpClass::FDiv => 0,
                        OpClass::FSqrt => 1,
                        OpClass::WidenMult => 2,
                        OpClass::Cvt => 3,
                        OpClass::DotProduct => 4,
                        OpClass::PerLaneShift => 5,
                    });
                }
            }
            GuardCond::All(gs) => {
                self.u8(4);
                self.varu(gs.len() as u64);
                for g in gs {
                    self.guard(g);
                }
            }
        }
    }

    fn stmt(&mut self, s: &BcStmt) {
        match s {
            BcStmt::Def { dst, op } => {
                self.u8(0);
                self.reg(*dst);
                self.op(op);
            }
            BcStmt::VStore {
                ty,
                addr,
                src,
                mis,
                modulo,
            } => {
                self.u8(1);
                self.ty(*ty);
                self.addr(addr);
                self.reg(*src);
                self.varu(*mis as u64);
                self.varu(*modulo as u64);
            }
            BcStmt::SStore { ty, addr, src } => {
                self.u8(2);
                self.ty(*ty);
                self.addr(addr);
                self.operand(src);
            }
            BcStmt::Loop {
                var,
                lo,
                limit,
                step,
                kind,
                group,
                body,
            } => {
                self.u8(3);
                self.reg(*var);
                self.operand(lo);
                self.operand(limit);
                match step {
                    Step::Const(k) => {
                        self.u8(0);
                        self.vari(*k);
                    }
                    Step::Vf(t, k) => {
                        self.u8(1);
                        self.ty(*t);
                        self.vari(*k);
                    }
                }
                self.u8(match kind {
                    LoopKind::Plain => 0,
                    LoopKind::VectorMain => 1,
                    LoopKind::ScalarPeel => 2,
                    LoopKind::ScalarTail => 3,
                });
                self.varu(*group as u64);
                self.varu(body.len() as u64);
                for st in body {
                    self.stmt(st);
                }
            }
            BcStmt::Version {
                cond,
                then_body,
                else_body,
            } => {
                self.u8(4);
                self.guard(cond);
                self.varu(then_body.len() as u64);
                for st in then_body {
                    self.stmt(st);
                }
                self.varu(else_body.len() as u64);
                for st in else_body {
                    self.stmt(st);
                }
            }
        }
    }
}

/// Encode a module to bytes.
pub fn encode_module(m: &BcModule) -> Vec<u8> {
    let mut w = W { buf: Vec::new() };
    w.buf.extend_from_slice(&MAGIC);
    w.u8(VERSION);
    w.varu(m.funcs.len() as u64);
    for f in &m.funcs {
        w.str(&f.name);
        w.varu(f.params.len() as u64);
        for p in &f.params {
            w.str(&p.name);
            w.ty(p.ty);
        }
        w.varu(f.arrays.len() as u64);
        for a in &f.arrays {
            w.str(&a.name);
            w.ty(a.elem);
            w.u8(matches!(a.kind, ArrayKind::Global) as u8);
        }
        w.varu(f.regs.len() as u64);
        for &t in &f.regs {
            w.bcty(t);
        }
        w.varu(f.body.len() as u64);
        for s in &f.body {
            w.stmt(s);
        }
    }
    w.buf
}

/// Encoded size of a single function in bytes (the §V-A(c) size metric).
pub fn encoded_size(f: &BcFunction) -> usize {
    encode_module(&BcModule::single(f.clone())).len() - (MAGIC.len() + 2)
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

struct R<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> R<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, DecodeError> {
        Err(DecodeError {
            offset: self.pos,
            msg: msg.into(),
        })
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or(DecodeError {
            offset: self.pos,
            msg: "unexpected end".into(),
        })?;
        self.pos += 1;
        Ok(b)
    }
    fn varu(&mut self) -> Result<u64, DecodeError> {
        let mut v = 0u64;
        let mut shift = 0;
        loop {
            let b = self.u8()?;
            if shift >= 64 {
                return self.err("varint overflow");
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }
    fn vari(&mut self) -> Result<i64, DecodeError> {
        let v = self.varu()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }
    fn f64(&mut self) -> Result<f64, DecodeError> {
        if self.pos + 8 > self.buf.len() {
            return self.err("unexpected end in f64");
        }
        let v = f64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        Ok(v)
    }
    fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.varu()? as usize;
        if self.pos + n > self.buf.len() {
            return self.err("unexpected end in string");
        }
        let s = std::str::from_utf8(&self.buf[self.pos..self.pos + n])
            .map_err(|_| DecodeError {
                offset: self.pos,
                msg: "invalid utf-8".into(),
            })?
            .to_owned();
        self.pos += n;
        Ok(s)
    }
    fn ty(&mut self) -> Result<ScalarTy, DecodeError> {
        let b = self.u8()?;
        ScalarTy::from_encoding(b).ok_or(DecodeError {
            offset: self.pos - 1,
            msg: format!("bad scalar type tag {b}"),
        })
    }
    fn bcty(&mut self) -> Result<BcTy, DecodeError> {
        match self.u8()? {
            0 => Ok(BcTy::Scalar(self.ty()?)),
            1 => Ok(BcTy::Vec(self.ty()?)),
            2 => Ok(BcTy::RealignToken),
            t => self.err(format!("bad BcTy tag {t}")),
        }
    }
    fn reg(&mut self) -> Result<Reg, DecodeError> {
        Ok(Reg(self.varu()? as u32))
    }
    fn opt_reg(&mut self) -> Result<Option<Reg>, DecodeError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.reg()?)),
            t => self.err(format!("bad Option<Reg> tag {t}")),
        }
    }
    fn operand(&mut self) -> Result<Operand, DecodeError> {
        match self.u8()? {
            0 => Ok(Operand::Reg(self.reg()?)),
            1 => Ok(Operand::ConstI(self.vari()?)),
            2 => Ok(Operand::ConstF(self.f64()?)),
            t => self.err(format!("bad operand tag {t}")),
        }
    }
    fn addr(&mut self) -> Result<Addr, DecodeError> {
        Ok(Addr {
            base: ArraySym(self.varu()? as u32),
            index: self.operand()?,
            offset: self.vari()?,
        })
    }
    fn binop(&mut self) -> Result<BinOp, DecodeError> {
        let b = self.u8()? as usize;
        BINOPS.get(b).copied().ok_or(DecodeError {
            offset: self.pos - 1,
            msg: format!("bad binop tag {b}"),
        })
    }
    fn unop(&mut self) -> Result<UnOp, DecodeError> {
        let b = self.u8()? as usize;
        UNOPS.get(b).copied().ok_or(DecodeError {
            offset: self.pos - 1,
            msg: format!("bad unop tag {b}"),
        })
    }
    fn amt(&mut self) -> Result<ShiftAmt, DecodeError> {
        match self.u8()? {
            0 => Ok(ShiftAmt::Scalar(self.operand()?)),
            1 => Ok(ShiftAmt::PerLane(self.reg()?)),
            t => self.err(format!("bad shift-amount tag {t}")),
        }
    }

    fn op(&mut self) -> Result<Op, DecodeError> {
        let tag = self.u8()?;
        Ok(match tag {
            0 => Op::GetVf {
                ty: self.ty()?,
                group: self.varu()? as u32,
            },
            1 => Op::GetAlignLimit(self.ty()?),
            2 => Op::LoopBound {
                vect: self.operand()?,
                scalar: self.operand()?,
                group: self.varu()? as u32,
            },
            3 => Op::InitUniform(self.ty()?, self.operand()?),
            4 => Op::InitAffine(self.ty()?, self.operand()?, self.operand()?),
            5 => Op::InitReduc(self.ty()?, self.operand()?, self.operand()?),
            6 => Op::ReducPlus(self.ty()?, self.reg()?),
            7 => Op::ReducMax(self.ty()?, self.reg()?),
            8 => Op::ReducMin(self.ty()?, self.reg()?),
            9 => Op::DotProduct(self.ty()?, self.reg()?, self.reg()?, self.reg()?),
            10 => Op::WidenMultHi(self.ty()?, self.reg()?, self.reg()?),
            11 => Op::WidenMultLo(self.ty()?, self.reg()?, self.reg()?),
            12 => Op::Pack(self.ty()?, self.reg()?, self.reg()?),
            13 => Op::UnpackHi(self.ty()?, self.reg()?),
            14 => Op::UnpackLo(self.ty()?, self.reg()?),
            15 => Op::CvtInt2Fp(self.ty()?, self.reg()?),
            16 => Op::CvtFp2Int(self.ty()?, self.reg()?),
            17 => Op::VBin(self.binop()?, self.ty()?, self.reg()?, self.reg()?),
            18 => Op::VUn(self.unop()?, self.ty()?, self.reg()?),
            19 => Op::VShl(self.ty()?, self.reg()?, self.amt()?),
            20 => Op::VShr(self.ty()?, self.reg()?, self.amt()?),
            21 => {
                let ty = self.ty()?;
                let stride = self.u8()?;
                let offset = self.u8()?;
                let n = self.varu()? as usize;
                let mut srcs = Vec::with_capacity(n);
                for _ in 0..n {
                    srcs.push(self.reg()?);
                }
                Op::Extract {
                    ty,
                    stride,
                    offset,
                    srcs,
                }
            }
            22 => Op::InterleaveHi(self.ty()?, self.reg()?, self.reg()?),
            23 => Op::InterleaveLo(self.ty()?, self.reg()?, self.reg()?),
            24 => Op::ALoad(self.ty()?, self.addr()?),
            25 => Op::AlignLoad(self.ty()?, self.addr()?),
            26 => Op::GetRt {
                ty: self.ty()?,
                addr: self.addr()?,
                mis: self.varu()? as u32,
                modulo: self.varu()? as u32,
            },
            27 => Op::RealignLoad {
                ty: self.ty()?,
                lo: self.opt_reg()?,
                hi: self.opt_reg()?,
                rt: self.opt_reg()?,
                addr: self.addr()?,
                mis: self.varu()? as u32,
                modulo: self.varu()? as u32,
            },
            28 => Op::SBin(self.binop()?, self.ty()?, self.operand()?, self.operand()?),
            29 => Op::SUn(self.unop()?, self.ty()?, self.operand()?),
            30 => Op::SCast {
                from: self.ty()?,
                to: self.ty()?,
                arg: self.operand()?,
            },
            31 => Op::SLoad(self.ty()?, self.addr()?),
            32 => Op::Copy(self.operand()?),
            t => return self.err(format!("bad op tag {t}")),
        })
    }

    fn guard(&mut self) -> Result<GuardCond, DecodeError> {
        Ok(match self.u8()? {
            0 => GuardCond::TypeSupported(self.ty()?),
            1 => GuardCond::BaseAligned(ArraySym(self.varu()? as u32)),
            2 => GuardCond::NoAlias(ArraySym(self.varu()? as u32), ArraySym(self.varu()? as u32)),
            3 => GuardCond::VsAtLeast(self.varu()? as u32),
            4 => {
                let n = self.varu()? as usize;
                let mut gs = Vec::with_capacity(n);
                for _ in 0..n {
                    gs.push(self.guard()?);
                }
                GuardCond::All(gs)
            }
            5 => GuardCond::StrideAligned {
                array: ArraySym(self.varu()? as u32),
                stride: self.operand()?,
                ty: self.ty()?,
            },
            6 => {
                let n = self.varu()? as usize;
                let mut cs = Vec::with_capacity(n.min(16));
                for _ in 0..n {
                    cs.push(match self.u8()? {
                        0 => OpClass::FDiv,
                        1 => OpClass::FSqrt,
                        2 => OpClass::WidenMult,
                        3 => OpClass::Cvt,
                        4 => OpClass::DotProduct,
                        5 => OpClass::PerLaneShift,
                        t => return self.err(format!("bad op class {t}")),
                    });
                }
                GuardCond::OpsSupported(cs)
            }
            t => return self.err(format!("bad guard tag {t}")),
        })
    }

    fn stmt(&mut self, depth: usize) -> Result<BcStmt, DecodeError> {
        if depth > 64 {
            return self.err("statement nesting too deep");
        }
        Ok(match self.u8()? {
            0 => BcStmt::Def {
                dst: self.reg()?,
                op: self.op()?,
            },
            1 => BcStmt::VStore {
                ty: self.ty()?,
                addr: self.addr()?,
                src: self.reg()?,
                mis: self.varu()? as u32,
                modulo: self.varu()? as u32,
            },
            2 => BcStmt::SStore {
                ty: self.ty()?,
                addr: self.addr()?,
                src: self.operand()?,
            },
            3 => {
                let var = self.reg()?;
                let lo = self.operand()?;
                let limit = self.operand()?;
                let step = match self.u8()? {
                    0 => Step::Const(self.vari()?),
                    1 => Step::Vf(self.ty()?, self.vari()?),
                    t => return self.err(format!("bad step tag {t}")),
                };
                let kind = match self.u8()? {
                    0 => LoopKind::Plain,
                    1 => LoopKind::VectorMain,
                    2 => LoopKind::ScalarPeel,
                    3 => LoopKind::ScalarTail,
                    t => return self.err(format!("bad loop kind {t}")),
                };
                let group = self.varu()? as u32;
                let n = self.varu()? as usize;
                let mut body = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    body.push(self.stmt(depth + 1)?);
                }
                BcStmt::Loop {
                    var,
                    lo,
                    limit,
                    step,
                    kind,
                    group,
                    body,
                }
            }
            4 => {
                let cond = self.guard()?;
                let n = self.varu()? as usize;
                let mut then_body = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    then_body.push(self.stmt(depth + 1)?);
                }
                let n = self.varu()? as usize;
                let mut else_body = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    else_body.push(self.stmt(depth + 1)?);
                }
                BcStmt::Version {
                    cond,
                    then_body,
                    else_body,
                }
            }
            t => return self.err(format!("bad statement tag {t}")),
        })
    }
}

/// Decode a module from bytes.
///
/// # Errors
/// Returns a [`DecodeError`] for truncated or malformed input. The result
/// is structurally valid but should still be run through
/// [`crate::verify_module`] before compilation.
pub fn decode_module(bytes: &[u8]) -> Result<BcModule, DecodeError> {
    let mut r = R { buf: bytes, pos: 0 };
    for (i, &m) in MAGIC.iter().enumerate() {
        if r.u8()? != m {
            return Err(DecodeError {
                offset: i,
                msg: "bad magic".into(),
            });
        }
    }
    let ver = r.u8()?;
    if ver != VERSION {
        return r.err(format!("unsupported version {ver}"));
    }
    let nf = r.varu()? as usize;
    let mut funcs = Vec::with_capacity(nf.min(1024));
    for _ in 0..nf {
        let name = r.str()?;
        let np = r.varu()? as usize;
        let mut params = Vec::with_capacity(np.min(1024));
        for _ in 0..np {
            params.push(BcParam {
                name: r.str()?,
                ty: r.ty()?,
            });
        }
        let na = r.varu()? as usize;
        let mut arrays = Vec::with_capacity(na.min(1024));
        for _ in 0..na {
            arrays.push(BcArray {
                name: r.str()?,
                elem: r.ty()?,
                kind: if r.u8()? == 1 {
                    ArrayKind::Global
                } else {
                    ArrayKind::PointerParam
                },
            });
        }
        let nr = r.varu()? as usize;
        let mut regs = Vec::with_capacity(nr.min(65536));
        for _ in 0..nr {
            regs.push(r.bcty()?);
        }
        let ns = r.varu()? as usize;
        let mut body = Vec::with_capacity(ns.min(65536));
        for _ in 0..ns {
            body.push(r.stmt(0)?);
        }
        funcs.push(BcFunction {
            name,
            params,
            arrays,
            regs,
            body,
        });
    }
    if r.pos != bytes.len() {
        return r.err("trailing bytes after module");
    }
    Ok(BcModule { funcs })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_function() -> BcFunction {
        let mut f = BcFunction::new(
            "sum",
            vec![BcParam {
                name: "n".into(),
                ty: ScalarTy::I64,
            }],
            vec![BcArray {
                name: "a".into(),
                elem: ScalarTy::F32,
                kind: ArrayKind::Global,
            }],
        );
        let vf = f.fresh_reg(BcTy::Scalar(ScalarTy::I64));
        let vsum = f.fresh_reg(BcTy::Vec(ScalarTy::F32));
        let i = f.fresh_reg(BcTy::Scalar(ScalarTy::I64));
        let vx = f.fresh_reg(BcTy::Vec(ScalarTy::F32));
        let s = f.fresh_reg(BcTy::Scalar(ScalarTy::F32));
        f.body = vec![
            BcStmt::Def {
                dst: vf,
                op: Op::GetVf {
                    ty: ScalarTy::F32,
                    group: 1,
                },
            },
            BcStmt::Def {
                dst: vsum,
                op: Op::InitUniform(ScalarTy::F32, Operand::ConstF(0.0)),
            },
            BcStmt::Loop {
                var: i,
                lo: Operand::ConstI(0),
                limit: Operand::Reg(Reg(0)),
                step: Step::Vf(ScalarTy::F32, 1),
                kind: LoopKind::VectorMain,
                group: 1,
                body: vec![
                    BcStmt::Def {
                        dst: vx,
                        op: Op::RealignLoad {
                            ty: ScalarTy::F32,
                            lo: None,
                            hi: None,
                            rt: None,
                            addr: Addr::with_offset(ArraySym(0), Operand::Reg(i), 2),
                            mis: 8,
                            modulo: 32,
                        },
                    },
                    BcStmt::Def {
                        dst: vsum,
                        op: Op::VBin(BinOp::Add, ScalarTy::F32, vx, vsum),
                    },
                ],
            },
            BcStmt::Def {
                dst: s,
                op: Op::ReducPlus(ScalarTy::F32, vsum),
            },
            BcStmt::Version {
                cond: GuardCond::All(vec![
                    GuardCond::TypeSupported(ScalarTy::F64),
                    GuardCond::BaseAligned(ArraySym(0)),
                    GuardCond::StrideAligned {
                        array: ArraySym(0),
                        stride: Operand::Reg(Reg(0)),
                        ty: ScalarTy::F32,
                    },
                    GuardCond::OpsSupported(vec![OpClass::FDiv, OpClass::Cvt]),
                ]),
                then_body: vec![BcStmt::SStore {
                    ty: ScalarTy::F32,
                    addr: Addr::new(ArraySym(0), Operand::ConstI(0)),
                    src: Operand::Reg(s),
                }],
                else_body: vec![],
            },
        ];
        f
    }

    #[test]
    fn roundtrip_preserves_module() {
        let m = BcModule::single(sample_function());
        let bytes = encode_module(&m);
        let back = decode_module(&bytes).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let m = BcModule::single(sample_function());
        let bytes = encode_module(&m);
        for cut in 0..bytes.len() {
            assert!(
                decode_module(&bytes[..cut]).is_err(),
                "truncation at {cut} silently accepted"
            );
        }
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let m = BcModule::new();
        let mut bytes = encode_module(&m);
        bytes[0] = b'X';
        assert!(decode_module(&bytes).is_err());
        let mut bytes = encode_module(&m);
        bytes[4] = 99;
        assert!(decode_module(&bytes).is_err());
    }

    #[test]
    fn rejects_trailing_bytes() {
        let m = BcModule::new();
        let mut bytes = encode_module(&m);
        bytes.push(0);
        assert!(decode_module(&bytes).is_err());
    }

    #[test]
    fn encoded_size_counts_function_body() {
        let f = sample_function();
        let small = BcFunction::new("empty", vec![], vec![]);
        assert!(encoded_size(&f) > encoded_size(&small));
    }
}

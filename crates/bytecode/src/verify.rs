//! Bytecode verifier: register/type discipline and structural rules.
//!
//! The verifier enforces the typing rules of Table 1 so that the online
//! stage can lower in a single pass without re-checking, mirroring the
//! paper's requirement that JIT vectorization be linear in code size.

use std::fmt;

use vapor_ir::{BinOp, ScalarTy, UnOp};

use crate::func::{BcFunction, BcModule};
use crate::op::{Op, ShiftAmt};
use crate::stmt::{BcStmt, GuardCond, Step};
use crate::ty::{Addr, BcTy, Operand, Reg};

/// Verification error.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyError(pub String);

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bytecode verification failed: {}", self.0)
    }
}

impl std::error::Error for VerifyError {}

fn err<T>(msg: impl Into<String>) -> Result<T, VerifyError> {
    Err(VerifyError(msg.into()))
}

/// The float type with the same lane width as `t`, for `cvt_int2fp`.
pub fn float_counterpart(t: ScalarTy) -> Option<ScalarTy> {
    match t {
        ScalarTy::I32 | ScalarTy::U32 => Some(ScalarTy::F32),
        ScalarTy::I64 => Some(ScalarTy::F64),
        _ => None,
    }
}

/// The integer type with the same lane width as `t`, for `cvt_fp2int`.
pub fn int_counterpart(t: ScalarTy) -> Option<ScalarTy> {
    match t {
        ScalarTy::F32 => Some(ScalarTy::I32),
        ScalarTy::F64 => Some(ScalarTy::I64),
        _ => None,
    }
}

struct Checker<'a> {
    f: &'a BcFunction,
}

impl<'a> Checker<'a> {
    fn reg_ty(&self, r: Reg) -> Result<BcTy, VerifyError> {
        if (r.0 as usize) < self.f.regs.len() {
            Ok(self.f.regs[r.0 as usize])
        } else {
            err(format!("register {r} out of range in {}", self.f.name))
        }
    }

    fn operand_ty(&self, o: &Operand) -> Result<Option<BcTy>, VerifyError> {
        match o {
            Operand::Reg(r) => Ok(Some(self.reg_ty(*r)?)),
            Operand::ConstI(_) | Operand::ConstF(_) => Ok(None),
        }
    }

    fn expect_scalar(&self, o: &Operand, ty: ScalarTy, what: &str) -> Result<(), VerifyError> {
        match (self.operand_ty(o)?, o) {
            (Some(BcTy::Scalar(t)), _) if t == ty => Ok(()),
            (None, Operand::ConstI(_)) => Ok(()),
            (None, Operand::ConstF(_)) if ty.is_float() => Ok(()),
            (got, _) => err(format!(
                "{what}: expected scalar {ty}, found {got:?} in {}",
                self.f.name
            )),
        }
    }

    fn expect_vec(&self, r: Reg, ty: ScalarTy, what: &str) -> Result<(), VerifyError> {
        match self.reg_ty(r)? {
            BcTy::Vec(t) if t == ty => Ok(()),
            got => err(format!(
                "{what}: expected vector of {ty}, found {got} for {r} in {}",
                self.f.name
            )),
        }
    }

    fn check_addr(&self, a: &Addr, elem: ScalarTy, what: &str) -> Result<(), VerifyError> {
        if (a.base.0 as usize) >= self.f.arrays.len() {
            return err(format!("{what}: array symbol out of range"));
        }
        let decl = self.f.array(a.base);
        if decl.elem != elem {
            return err(format!(
                "{what}: address into {}[] of {} used at element type {elem}",
                decl.name, decl.elem
            ));
        }
        self.expect_scalar(&a.index, ScalarTy::I64, &format!("{what}: index"))
    }

    /// Result type of an op, with full operand checking.
    fn op_result_ty(&self, op: &Op) -> Result<BcTy, VerifyError> {
        use BcTy::{Scalar, Vec as V};
        match op {
            Op::GetVf { .. } | Op::GetAlignLimit(_) => Ok(Scalar(ScalarTy::I64)),
            Op::LoopBound { vect, scalar, .. } => {
                self.expect_scalar(vect, ScalarTy::I64, "loop_bound.vect")?;
                self.expect_scalar(scalar, ScalarTy::I64, "loop_bound.scalar")?;
                Ok(Scalar(ScalarTy::I64))
            }
            Op::InitUniform(t, v) => {
                self.expect_scalar(v, *t, "init_uniform")?;
                Ok(V(*t))
            }
            Op::InitAffine(t, v, i) => {
                self.expect_scalar(v, *t, "init_affine.val")?;
                self.expect_scalar(i, *t, "init_affine.inc")?;
                Ok(V(*t))
            }
            Op::InitReduc(t, v, d) => {
                self.expect_scalar(v, *t, "init_reduc.val")?;
                self.expect_scalar(d, *t, "init_reduc.default")?;
                Ok(V(*t))
            }
            Op::ReducPlus(t, r) | Op::ReducMax(t, r) | Op::ReducMin(t, r) => {
                self.expect_vec(*r, *t, "reduc")?;
                Ok(Scalar(*t))
            }
            Op::DotProduct(t, a, b, c) => {
                let w = t
                    .widened()
                    .ok_or_else(|| VerifyError(format!("dot_product: {t} has no widened type")))?;
                self.expect_vec(*a, *t, "dot_product.v1")?;
                self.expect_vec(*b, *t, "dot_product.v2")?;
                self.expect_vec(*c, w, "dot_product.acc")?;
                Ok(V(w))
            }
            Op::WidenMultHi(t, a, b) | Op::WidenMultLo(t, a, b) => {
                let w = t
                    .widened()
                    .ok_or_else(|| VerifyError(format!("widen_mult: {t} has no widened type")))?;
                self.expect_vec(*a, *t, "widen_mult.v1")?;
                self.expect_vec(*b, *t, "widen_mult.v2")?;
                Ok(V(w))
            }
            Op::Pack(t, a, b) => {
                let n = t
                    .narrowed()
                    .ok_or_else(|| VerifyError(format!("pack: {t} has no narrowed type")))?;
                self.expect_vec(*a, *t, "pack.v1")?;
                self.expect_vec(*b, *t, "pack.v2")?;
                Ok(V(n))
            }
            Op::UnpackHi(t, a) | Op::UnpackLo(t, a) => {
                let w = t
                    .widened()
                    .ok_or_else(|| VerifyError(format!("unpack: {t} has no widened type")))?;
                self.expect_vec(*a, *t, "unpack")?;
                Ok(V(w))
            }
            Op::CvtInt2Fp(t, a) => {
                let ft = float_counterpart(*t)
                    .ok_or_else(|| VerifyError(format!("cvt_int2fp: no float of width of {t}")))?;
                self.expect_vec(*a, *t, "cvt_int2fp")?;
                Ok(V(ft))
            }
            Op::CvtFp2Int(t, a) => {
                let it = int_counterpart(*t)
                    .ok_or_else(|| VerifyError(format!("cvt_fp2int: no int of width of {t}")))?;
                self.expect_vec(*a, *t, "cvt_fp2int")?;
                Ok(V(it))
            }
            Op::VBin(op, t, a, b) => {
                if op.is_comparison() {
                    return err("vector comparisons are not part of the split layer");
                }
                if matches!(op, BinOp::Shl | BinOp::Shr) {
                    return err("use shift_left/shift_right idioms for vector shifts");
                }
                if op.int_only() && t.is_float() {
                    return err(format!("integer-only vector op {op:?} at {t}"));
                }
                if *op == BinOp::Div && !t.is_float() {
                    return err("integer vector division is not supported by any SIMD target");
                }
                self.expect_vec(*a, *t, "vbin.lhs")?;
                self.expect_vec(*b, *t, "vbin.rhs")?;
                Ok(V(*t))
            }
            Op::VUn(op, t, a) => {
                if *op == UnOp::Sqrt && !t.is_float() {
                    return err("vector sqrt on integer type");
                }
                self.expect_vec(*a, *t, "vun")?;
                Ok(V(*t))
            }
            Op::VShl(t, v, amt) | Op::VShr(t, v, amt) => {
                if t.is_float() {
                    return err("vector shift on float type");
                }
                self.expect_vec(*v, *t, "vshift")?;
                match amt {
                    ShiftAmt::Scalar(o) => self.expect_scalar(o, *t, "vshift.amount")?,
                    ShiftAmt::PerLane(r) => self.expect_vec(*r, *t, "vshift.amounts")?,
                }
                Ok(V(*t))
            }
            Op::Extract {
                ty,
                stride,
                offset,
                srcs,
            } => {
                if *stride == 0 || srcs.len() != *stride as usize {
                    return err(format!(
                        "extract: needs exactly `stride` sources, got {} for stride {stride}",
                        srcs.len()
                    ));
                }
                if offset >= stride {
                    return err("extract: offset must be < stride");
                }
                for r in srcs {
                    self.expect_vec(*r, *ty, "extract.src")?;
                }
                Ok(V(*ty))
            }
            Op::InterleaveHi(t, a, b) | Op::InterleaveLo(t, a, b) => {
                self.expect_vec(*a, *t, "interleave.v1")?;
                self.expect_vec(*b, *t, "interleave.v2")?;
                Ok(V(*t))
            }
            Op::ALoad(t, a) | Op::AlignLoad(t, a) => {
                self.check_addr(a, *t, "vector load")?;
                Ok(V(*t))
            }
            Op::GetRt {
                ty,
                addr,
                modulo,
                mis,
            } => {
                self.check_addr(addr, *ty, "get_rt")?;
                if *modulo != 0 && mis >= modulo {
                    return err("get_rt: mis must be < mod when mod != 0");
                }
                Ok(BcTy::RealignToken)
            }
            Op::RealignLoad {
                ty,
                lo,
                hi,
                rt,
                addr,
                mis,
                modulo,
            } => {
                self.check_addr(addr, *ty, "realign_load")?;
                if *modulo != 0 && mis >= modulo {
                    return err("realign_load: mis must be < mod when mod != 0");
                }
                match (lo, hi, rt) {
                    (Some(l), Some(h), Some(r)) => {
                        self.expect_vec(*l, *ty, "realign_load.v1")?;
                        self.expect_vec(*h, *ty, "realign_load.v2")?;
                        if self.reg_ty(*r)? != BcTy::RealignToken {
                            return err("realign_load.rt must be a realignment token");
                        }
                    }
                    (None, None, None) => {}
                    _ => return err("realign_load: v1/v2/rt must all be present or all absent"),
                }
                Ok(V(*ty))
            }
            Op::SBin(op, t, a, b) => {
                if op.int_only() && t.is_float() {
                    return err(format!("integer-only scalar op {op:?} at {t}"));
                }
                self.expect_scalar(a, *t, "sbin.lhs")?;
                self.expect_scalar(b, *t, "sbin.rhs")?;
                Ok(Scalar(if op.is_comparison() {
                    ScalarTy::I32
                } else {
                    *t
                }))
            }
            Op::SUn(op, t, a) => {
                if *op == UnOp::Sqrt && !t.is_float() {
                    return err("scalar sqrt on integer type");
                }
                self.expect_scalar(a, *t, "sun")?;
                Ok(Scalar(*t))
            }
            Op::SCast { from, to, arg } => {
                self.expect_scalar(arg, *from, "cvt")?;
                Ok(Scalar(*to))
            }
            Op::SLoad(t, a) => {
                self.check_addr(a, *t, "scalar load")?;
                Ok(Scalar(*t))
            }
            Op::Copy(o) => match self.operand_ty(o)? {
                Some(t) => Ok(t),
                // Constant copies adopt the destination's declared type;
                // checked at the Def site.
                None => Ok(Scalar(ScalarTy::I64)),
            },
        }
    }

    fn check_guard(&self, g: &GuardCond) -> Result<(), VerifyError> {
        match g {
            GuardCond::TypeSupported(_) | GuardCond::VsAtLeast(_) | GuardCond::OpsSupported(_) => {
                Ok(())
            }
            GuardCond::StrideAligned {
                array,
                stride,
                ty: _,
            } => {
                if (array.0 as usize) >= self.f.arrays.len() {
                    return err("stride_aligned guard references unknown array");
                }
                self.expect_scalar(stride, ScalarTy::I64, "stride_aligned.stride")
            }
            GuardCond::BaseAligned(a) => {
                if (a.0 as usize) < self.f.arrays.len() {
                    Ok(())
                } else {
                    err("base_aligned guard references unknown array")
                }
            }
            GuardCond::NoAlias(a, b) => {
                if (a.0 as usize) < self.f.arrays.len() && (b.0 as usize) < self.f.arrays.len() {
                    Ok(())
                } else {
                    err("no_alias guard references unknown array")
                }
            }
            GuardCond::All(gs) => {
                for g in gs {
                    self.check_guard(g)?;
                }
                Ok(())
            }
        }
    }

    fn check_stmt(&self, s: &BcStmt) -> Result<(), VerifyError> {
        match s {
            BcStmt::Def { dst, op } => {
                let declared = self.reg_ty(*dst)?;
                let result = self.op_result_ty(op)?;
                // Constant copies adopt the declared type.
                if let Op::Copy(o @ (Operand::ConstI(_) | Operand::ConstF(_))) = op {
                    return match (declared, o) {
                        (BcTy::Scalar(t), Operand::ConstF(_)) if t.is_float() => Ok(()),
                        (BcTy::Scalar(_), Operand::ConstI(_)) => Ok(()),
                        _ => err(format!("constant copy into incompatible register {dst}")),
                    };
                }
                if declared != result {
                    return err(format!(
                        "{}: register {dst} declared {declared} but defined as {result}",
                        self.f.name
                    ));
                }
                Ok(())
            }
            BcStmt::VStore {
                ty,
                addr,
                src,
                mis,
                modulo,
            } => {
                if *modulo != 0 && mis >= modulo {
                    return err("vector store: mis must be < mod when mod != 0");
                }
                self.check_addr(addr, *ty, "vector store")?;
                self.expect_vec(*src, *ty, "vector store src")
            }
            BcStmt::SStore { ty, addr, src } => {
                self.check_addr(addr, *ty, "scalar store")?;
                self.expect_scalar(src, *ty, "scalar store src")
            }
            BcStmt::Loop {
                var,
                lo,
                limit,
                step,
                body,
                ..
            } => {
                match self.reg_ty(*var)? {
                    BcTy::Scalar(ScalarTy::I64) => {}
                    got => return err(format!("loop variable {var} must be long, is {got}")),
                }
                self.expect_scalar(lo, ScalarTy::I64, "loop lower bound")?;
                self.expect_scalar(limit, ScalarTy::I64, "loop limit")?;
                if let Step::Const(k) = step {
                    if *k <= 0 {
                        return err("loop step must be positive");
                    }
                }
                for st in body {
                    self.check_stmt(st)?;
                }
                Ok(())
            }
            BcStmt::Version {
                cond,
                then_body,
                else_body,
            } => {
                self.check_guard(cond)?;
                for st in then_body.iter().chain(else_body) {
                    self.check_stmt(st)?;
                }
                Ok(())
            }
        }
    }
}

/// Verify one function.
///
/// # Errors
/// Returns the first violation found.
pub fn verify_function(f: &BcFunction) -> Result<(), VerifyError> {
    for (i, p) in f.params.iter().enumerate() {
        match f.regs.get(i) {
            Some(BcTy::Scalar(t)) if *t == p.ty => {}
            _ => {
                return err(format!(
                    "parameter {} must be pre-bound to register %{i} of type {}",
                    p.name, p.ty
                ))
            }
        }
    }
    let c = Checker { f };
    for s in &f.body {
        c.check_stmt(s)?;
    }
    Ok(())
}

/// Verify every function in the module.
///
/// # Errors
/// Returns the first violation found.
pub fn verify_module(m: &BcModule) -> Result<(), VerifyError> {
    for f in &m.funcs {
        verify_function(f)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{BcArray, BcParam};
    use crate::ty::ArraySym;
    use vapor_ir::ArrayKind;

    fn base_func() -> BcFunction {
        BcFunction::new(
            "t",
            vec![BcParam {
                name: "n".into(),
                ty: ScalarTy::I64,
            }],
            vec![BcArray {
                name: "x".into(),
                elem: ScalarTy::F32,
                kind: ArrayKind::Global,
            }],
        )
    }

    #[test]
    fn accepts_well_typed_vector_code() {
        let mut f = base_func();
        let v = f.fresh_reg(BcTy::Vec(ScalarTy::F32));
        let i = f.fresh_reg(BcTy::Scalar(ScalarTy::I64));
        f.body = vec![
            BcStmt::Def {
                dst: i,
                op: Op::Copy(Operand::ConstI(0)),
            },
            BcStmt::Def {
                dst: v,
                op: Op::ALoad(ScalarTy::F32, Addr::new(ArraySym(0), i)),
            },
            BcStmt::VStore {
                ty: ScalarTy::F32,
                addr: Addr::new(ArraySym(0), i),
                src: v,
                mis: 0,
                modulo: 32,
            },
        ];
        verify_function(&f).unwrap();
    }

    #[test]
    fn rejects_elem_type_mismatch() {
        let mut f = base_func();
        let v = f.fresh_reg(BcTy::Vec(ScalarTy::I32));
        f.body = vec![BcStmt::Def {
            dst: v,
            op: Op::ALoad(ScalarTy::I32, Addr::new(ArraySym(0), Operand::ConstI(0))),
        }];
        assert!(verify_function(&f).is_err());
    }

    #[test]
    fn rejects_widen_of_widest_type() {
        let mut f = base_func();
        let a = f.fresh_reg(BcTy::Vec(ScalarTy::F64));
        let b = f.fresh_reg(BcTy::Vec(ScalarTy::F64));
        let d = f.fresh_reg(BcTy::Vec(ScalarTy::F64));
        f.body = vec![BcStmt::Def {
            dst: d,
            op: Op::WidenMultHi(ScalarTy::F64, a, b),
        }];
        assert!(verify_function(&f).is_err());
    }

    #[test]
    fn rejects_partial_realign_operands() {
        let mut f = base_func();
        let lo = f.fresh_reg(BcTy::Vec(ScalarTy::F32));
        let d = f.fresh_reg(BcTy::Vec(ScalarTy::F32));
        f.body = vec![BcStmt::Def {
            dst: d,
            op: Op::RealignLoad {
                ty: ScalarTy::F32,
                lo: Some(lo),
                hi: None,
                rt: None,
                addr: Addr::new(ArraySym(0), Operand::ConstI(0)),
                mis: 0,
                modulo: 0,
            },
        }];
        assert!(verify_function(&f).is_err());
    }

    #[test]
    fn rejects_int_vector_division() {
        let mut f = base_func();
        let a = f.fresh_reg(BcTy::Vec(ScalarTy::I32));
        let d = f.fresh_reg(BcTy::Vec(ScalarTy::I32));
        f.body = vec![BcStmt::Def {
            dst: d,
            op: Op::VBin(BinOp::Div, ScalarTy::I32, a, a),
        }];
        assert!(verify_function(&f).is_err());
    }

    #[test]
    fn rejects_bad_extract_arity() {
        let mut f = base_func();
        let a = f.fresh_reg(BcTy::Vec(ScalarTy::F32));
        let d = f.fresh_reg(BcTy::Vec(ScalarTy::F32));
        f.body = vec![BcStmt::Def {
            dst: d,
            op: Op::Extract {
                ty: ScalarTy::F32,
                stride: 2,
                offset: 0,
                srcs: vec![a],
            },
        }];
        assert!(verify_function(&f).is_err());
    }

    #[test]
    fn rejects_mis_not_less_than_mod() {
        let mut f = base_func();
        let d = f.fresh_reg(BcTy::Vec(ScalarTy::F32));
        f.body = vec![BcStmt::Def {
            dst: d,
            op: Op::RealignLoad {
                ty: ScalarTy::F32,
                lo: None,
                hi: None,
                rt: None,
                addr: Addr::new(ArraySym(0), Operand::ConstI(0)),
                mis: 32,
                modulo: 32,
            },
        }];
        assert!(verify_function(&f).is_err());
    }
}

//! Bytecode functions and modules.

use vapor_ir::{ArrayKind, ScalarTy};

use crate::stmt::BcStmt;
use crate::ty::{ArraySym, BcTy, Reg};

/// An array symbol of a bytecode function.
#[derive(Debug, Clone, PartialEq)]
pub struct BcArray {
    /// Source-level name.
    pub name: String,
    /// Element type.
    pub elem: ScalarTy,
    /// Declaration kind carried through from the IR; a *native* offline
    /// compiler may force alignment of `Global` arrays, while the split
    /// flow must treat every base as unknown and guard instead.
    pub kind: ArrayKind,
}

/// A scalar parameter of a bytecode function. Parameter `k` is bound to
/// register `Reg(k)` on entry.
#[derive(Debug, Clone, PartialEq)]
pub struct BcParam {
    /// Source-level name.
    pub name: String,
    /// Scalar type.
    pub ty: ScalarTy,
}

/// A bytecode function (one per kernel).
#[derive(Debug, Clone, PartialEq)]
pub struct BcFunction {
    /// Function name.
    pub name: String,
    /// Scalar parameters (pre-bound to the first registers).
    pub params: Vec<BcParam>,
    /// Array symbols.
    pub arrays: Vec<BcArray>,
    /// Register types, indexed by [`Reg`]. The first `params.len()`
    /// entries are the parameter registers.
    pub regs: Vec<BcTy>,
    /// Body.
    pub body: Vec<BcStmt>,
}

impl BcFunction {
    /// Create an empty function whose first registers hold the scalar
    /// parameters.
    pub fn new(name: impl Into<String>, params: Vec<BcParam>, arrays: Vec<BcArray>) -> BcFunction {
        let regs = params.iter().map(|p| BcTy::Scalar(p.ty)).collect();
        BcFunction {
            name: name.into(),
            params,
            arrays,
            regs,
            body: Vec::new(),
        }
    }

    /// Allocate a fresh register of the given type.
    pub fn fresh_reg(&mut self, ty: BcTy) -> Reg {
        self.regs.push(ty);
        Reg(self.regs.len() as u32 - 1)
    }

    /// Type of a register.
    ///
    /// # Panics
    /// Panics if the register is out of range.
    pub fn reg_ty(&self, r: Reg) -> BcTy {
        self.regs[r.0 as usize]
    }

    /// The register bound to scalar parameter `name`, if any.
    pub fn param_reg(&self, name: &str) -> Option<Reg> {
        self.params
            .iter()
            .position(|p| p.name == name)
            .map(|i| Reg(i as u32))
    }

    /// The array symbol with the given name, if any.
    pub fn array_named(&self, name: &str) -> Option<ArraySym> {
        self.arrays
            .iter()
            .position(|a| a.name == name)
            .map(|i| ArraySym(i as u32))
    }

    /// Declaration of an array symbol.
    ///
    /// # Panics
    /// Panics if the symbol is out of range.
    pub fn array(&self, sym: ArraySym) -> &BcArray {
        &self.arrays[sym.0 as usize]
    }

    /// Visit every statement, pre-order.
    pub fn walk(&self, f: &mut impl FnMut(&BcStmt)) {
        for s in &self.body {
            s.walk(f);
        }
    }

    /// Total statement count (bytecode "size" in instructions; the byte
    /// size metric of §V-A(c) uses the binary encoding instead).
    pub fn stmt_count(&self) -> usize {
        self.body.iter().map(BcStmt::count).sum()
    }

    /// Whether the function contains any vector code.
    pub fn has_vector_code(&self) -> bool {
        self.body.iter().any(BcStmt::has_vector_code)
    }
}

/// A bytecode module: a set of functions (the unit of encoding).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BcModule {
    /// Functions.
    pub funcs: Vec<BcFunction>,
}

impl BcModule {
    /// Empty module.
    pub fn new() -> BcModule {
        BcModule::default()
    }

    /// Module with a single function.
    pub fn single(f: BcFunction) -> BcModule {
        BcModule { funcs: vec![f] }
    }

    /// Function by name.
    pub fn func_named(&self, name: &str) -> Option<&BcFunction> {
        self.funcs.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_registers_are_prebound() {
        let f = BcFunction::new(
            "t",
            vec![
                BcParam {
                    name: "n".into(),
                    ty: ScalarTy::I64,
                },
                BcParam {
                    name: "alpha".into(),
                    ty: ScalarTy::F32,
                },
            ],
            vec![BcArray {
                name: "x".into(),
                elem: ScalarTy::F32,
                kind: ArrayKind::PointerParam,
            }],
        );
        assert_eq!(f.param_reg("alpha"), Some(Reg(1)));
        assert_eq!(f.reg_ty(Reg(0)), BcTy::Scalar(ScalarTy::I64));
        assert_eq!(f.array_named("x"), Some(ArraySym(0)));
        assert_eq!(f.array_named("nope"), None);
    }

    #[test]
    fn fresh_regs_extend_table() {
        let mut f = BcFunction::new("t", vec![], vec![]);
        let r = f.fresh_reg(BcTy::Vec(ScalarTy::I16));
        assert_eq!(r, Reg(0));
        assert_eq!(f.reg_ty(r), BcTy::Vec(ScalarTy::I16));
    }
}

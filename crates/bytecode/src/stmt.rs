//! Structured statements of the vectorized bytecode: definitions,
//! stores, counted loops, and guarded version pairs.

use vapor_ir::ScalarTy;

use crate::op::Op;
use crate::ty::{Addr, ArraySym, Operand, Reg};

/// Loop step: constant, or scaled by the VF materialized online.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Step {
    /// `i += k`.
    Const(i64),
    /// `i += get_VF(T) * k` (usually `k == 1`).
    Vf(ScalarTy, i64),
}

/// Role of a loop in the three-loop peel/main/tail structure the offline
/// vectorizer emits (§III-B(c) of the paper). The online stage uses this
/// to pick `loop_bound` arms and to scalarize correctly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    /// Untransformed loop (scalar bytecode, outer loops).
    Plain,
    /// The vectorized main loop (step is VF-scaled).
    VectorMain,
    /// Scalar peel loop executed before the main loop to reach alignment.
    ScalarPeel,
    /// Scalar tail loop executing remaining iterations (the entire range
    /// when the main loop is scalarized away).
    ScalarTail,
}

/// Conditions testable by `version_guard_COND` (§III-B(d)).
///
/// The offline compiler emits guards; the online compiler folds the ones
/// it can decide (target features, runtime allocation alignment) and
/// emits runtime tests for the rest.
#[derive(Debug, Clone, PartialEq)]
pub enum GuardCond {
    /// The target supports vector operations on this element type
    /// (e.g. false for `double` on AltiVec). Always foldable online.
    TypeSupported(ScalarTy),
    /// The base of the array can be placed on a `get_align_limit`
    /// boundary. Foldable by a JIT that owns allocation; a runtime test
    /// of the base address otherwise.
    BaseAligned(ArraySym),
    /// The two arrays do not overlap. Provable offline for distinct
    /// restrict arrays; otherwise a runtime overlap test.
    NoAlias(ArraySym, ArraySym),
    /// The target vector size is at least `bytes` (used when selecting
    /// between inner- and outer-loop vectorized versions).
    VsAtLeast(u32),
    /// The rows of a 2-D array walked with the given element stride start
    /// on vector boundaries: `base % VS == 0 && (stride * sizeof(T)) % VS
    /// == 0`. This is the MMM-style alignment test of §V-A that a weak
    /// online compiler re-evaluates inside the outer loop.
    StrideAligned {
        /// The strided array.
        array: ArraySym,
        /// Row stride in elements (usually a runtime dimension).
        stride: Operand,
        /// Element type.
        ty: ScalarTy,
    },
    /// The target claims vector support for these operation classes
    /// ("availability of vector support for certain data-types or
    /// operations", §III-B(d)). Always foldable online.
    OpsSupported(Vec<OpClass>),
    /// Conjunction.
    All(Vec<GuardCond>),
}

/// Operation classes testable by [`GuardCond::OpsSupported`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Elementwise float division.
    FDiv,
    /// Elementwise square root.
    FSqrt,
    /// Widening multiplication.
    WidenMult,
    /// Lane-wise int↔float conversion.
    Cvt,
    /// Dot-product accumulation.
    DotProduct,
    /// Per-lane variable shift amounts.
    PerLaneShift,
}

/// One bytecode statement.
#[derive(Debug, Clone, PartialEq)]
pub enum BcStmt {
    /// `dst = op` — (re)definition of a register.
    Def {
        /// Destination register.
        dst: Reg,
        /// Operation.
        op: Op,
    },
    /// Vector store of `m` elements.
    VStore {
        /// Element type.
        ty: ScalarTy,
        /// Destination address.
        addr: Addr,
        /// Source vector register.
        src: Reg,
        /// Static misalignment hint in bytes (like `realign_load`).
        mis: u32,
        /// Hint modulo; `0` = alignment unknown at offline time.
        modulo: u32,
    },
    /// Scalar store.
    SStore {
        /// Element type.
        ty: ScalarTy,
        /// Destination address.
        addr: Addr,
        /// Stored value.
        src: Operand,
    },
    /// Counted loop: `for (var = lo; var < limit; var += step)`.
    Loop {
        /// Induction register (scalar `long`).
        var: Reg,
        /// Lower bound.
        lo: Operand,
        /// Exclusive upper bound (often a `loop_bound` result).
        limit: Operand,
        /// Step.
        step: Step,
        /// Loop role.
        kind: LoopKind,
        /// Loop group (shared by one main/tail pair and its bounds).
        group: u32,
        /// Body.
        body: Vec<BcStmt>,
    },
    /// `version_guard(cond) ? then_body : else_body`.
    Version {
        /// Guard condition.
        cond: GuardCond,
        /// Version executed when the guard holds.
        then_body: Vec<BcStmt>,
        /// Fall-back version.
        else_body: Vec<BcStmt>,
    },
}

impl BcStmt {
    /// Visit this statement and all nested statements, pre-order.
    pub fn walk(&self, f: &mut impl FnMut(&BcStmt)) {
        f(self);
        match self {
            BcStmt::Loop { body, .. } => {
                for s in body {
                    s.walk(f);
                }
            }
            BcStmt::Version {
                then_body,
                else_body,
                ..
            } => {
                for s in then_body.iter().chain(else_body) {
                    s.walk(f);
                }
            }
            _ => {}
        }
    }

    /// Count statements in this subtree.
    pub fn count(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }

    /// Whether the subtree contains any vector-typed operation.
    pub fn has_vector_code(&self) -> bool {
        let mut found = false;
        self.walk(&mut |s| match s {
            BcStmt::VStore { .. } => found = true,
            BcStmt::Def { op, .. } => {
                if matches!(
                    op,
                    Op::InitUniform(..)
                        | Op::InitAffine(..)
                        | Op::InitReduc(..)
                        | Op::DotProduct(..)
                        | Op::WidenMultHi(..)
                        | Op::WidenMultLo(..)
                        | Op::Pack(..)
                        | Op::UnpackHi(..)
                        | Op::UnpackLo(..)
                        | Op::CvtInt2Fp(..)
                        | Op::CvtFp2Int(..)
                        | Op::VBin(..)
                        | Op::VUn(..)
                        | Op::VShl(..)
                        | Op::VShr(..)
                        | Op::Extract { .. }
                        | Op::InterleaveHi(..)
                        | Op::InterleaveLo(..)
                        | Op::ALoad(..)
                        | Op::AlignLoad(..)
                        | Op::RealignLoad { .. }
                ) {
                    found = true;
                }
            }
            _ => {}
        });
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vapor_ir::BinOp;

    #[test]
    fn walk_and_count() {
        let s = BcStmt::Loop {
            var: Reg(0),
            lo: Operand::ConstI(0),
            limit: Operand::ConstI(8),
            step: Step::Vf(ScalarTy::F32, 1),
            kind: LoopKind::VectorMain,
            group: 1,
            body: vec![BcStmt::Def {
                dst: Reg(1),
                op: Op::VBin(BinOp::Add, ScalarTy::F32, Reg(1), Reg(2)),
            }],
        };
        assert_eq!(s.count(), 2);
        assert!(s.has_vector_code());
    }

    #[test]
    fn scalar_only_detected() {
        let s = BcStmt::Def {
            dst: Reg(0),
            op: Op::SBin(
                BinOp::Add,
                ScalarTy::I64,
                Operand::ConstI(1),
                Operand::ConstI(2),
            ),
        };
        assert!(!s.has_vector_code());
    }

    #[test]
    fn version_walk_covers_both_arms() {
        let leaf = |r| BcStmt::Def {
            dst: Reg(r),
            op: Op::Copy(Operand::ConstI(0)),
        };
        let s = BcStmt::Version {
            cond: GuardCond::TypeSupported(ScalarTy::F64),
            then_body: vec![leaf(1)],
            else_body: vec![leaf(2), leaf(3)],
        };
        assert_eq!(s.count(), 4);
    }
}

//! # vapor-bytecode — the split abstraction layer
//!
//! The portable *vectorized bytecode* that sits between the offline and
//! online compilation stages (Figure 1(B) and Table 1 of the paper).
//! Everything machine-specific — vector size, alignment limits, loop
//! bounds that depend on either — is abstracted behind idioms
//! (`get_VF`, `get_align_limit`, `loop_bound`, `version_guard`, the
//! `mis`/`mod` realignment hints) and materialized only by the online
//! stage.
//!
//! The paper embeds these idioms in CLI; this crate uses a typed,
//! register-based structured form with the same information content (see
//! DESIGN.md §1 for the substitution argument) plus a compact binary
//! encoding ([`encode_module`]/[`decode_module`]) used for the bytecode
//! size experiments and a verifier enforcing Table 1's typing rules.

pub mod codec;
pub mod func;
pub mod op;
pub mod printer;
pub mod stmt;
pub mod ty;
pub mod verify;

pub use codec::{decode_module, encode_module, encoded_size, DecodeError, MAGIC, VERSION};
pub use func::{BcArray, BcFunction, BcModule, BcParam};
pub use op::{Op, ShiftAmt};
pub use printer::{fmt_guard, print_function, print_module};
pub use stmt::{BcStmt, GuardCond, LoopKind, OpClass, Step};
pub use ty::{Addr, ArraySym, BcTy, Operand, Reg};
pub use verify::{float_counterpart, int_counterpart, verify_function, verify_module, VerifyError};

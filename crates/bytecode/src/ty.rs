//! Types, registers and addressing of the vectorized bytecode.

use std::fmt;

use vapor_ir::ScalarTy;

/// Type of a bytecode register.
///
/// `Vec(T)` is a **VF-parametric** vector of `T`: its lane count is
/// `get_VF(T)` and is unknown until the online compilation stage picks a
/// target (or 1 when scalarizing). This is the heart of the split layer:
/// nothing in the bytecode depends on the actual vector size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BcTy {
    /// A scalar of the given element type.
    Scalar(ScalarTy),
    /// A vector of `get_VF(T)` lanes of the given element type.
    Vec(ScalarTy),
    /// An opaque realignment token produced by `get_rt` (a permutation
    /// vector, bit mask, or shift amount depending on the target).
    RealignToken,
}

impl BcTy {
    /// The element type, if this is a scalar or vector type.
    pub fn elem(self) -> Option<ScalarTy> {
        match self {
            BcTy::Scalar(t) | BcTy::Vec(t) => Some(t),
            BcTy::RealignToken => None,
        }
    }

    /// Whether this is a vector type.
    pub fn is_vec(self) -> bool {
        matches!(self, BcTy::Vec(_))
    }
}

impl fmt::Display for BcTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BcTy::Scalar(t) => write!(f, "{t}"),
            BcTy::Vec(t) => write!(f, "v{t}"),
            BcTy::RealignToken => f.write_str("rt"),
        }
    }
}

/// A (mutable) virtual register of a bytecode function.
///
/// Registers are typed at declaration and may be re-assigned — loop
/// accumulators are expressed as re-definitions, not SSA phis, keeping
/// the online pass a single linear scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Index of an array symbol in the function's array table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArraySym(pub u32);

/// An operand: a register or an immediate constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// Register reference.
    Reg(Reg),
    /// Integer immediate.
    ConstI(i64),
    /// Float immediate.
    ConstF(f64),
}

impl Operand {
    /// The register, if this is a register operand.
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            _ => None,
        }
    }

    /// The integer constant, if this is an integer immediate.
    pub fn as_const_i(self) -> Option<i64> {
        match self {
            Operand::ConstI(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::ConstI(v) => write!(f, "{v}"),
            Operand::ConstF(v) => write!(f, "{v:?}"),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

/// A high-level address: `base[index + offset]` in *elements* of the
/// array's element type.
///
/// The bytecode keeps addressing symbolic (CLI-style: no loss of type or
/// base-object metadata), which is what lets the online stage reason
/// about alignment and fold address arithmetic per target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Addr {
    /// Base array.
    pub base: ArraySym,
    /// Element index (must be a scalar `long` operand).
    pub index: Operand,
    /// Constant element offset added to the index.
    pub offset: i64,
}

impl Addr {
    /// Address of `base[index]`.
    pub fn new(base: ArraySym, index: impl Into<Operand>) -> Addr {
        Addr {
            base,
            index: index.into(),
            offset: 0,
        }
    }

    /// Address of `base[index + offset]`.
    pub fn with_offset(base: ArraySym, index: impl Into<Operand>, offset: i64) -> Addr {
        Addr {
            base,
            index: index.into(),
            offset,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(BcTy::Vec(ScalarTy::F32).to_string(), "vfloat");
        assert_eq!(BcTy::Scalar(ScalarTy::I16).to_string(), "short");
        assert_eq!(Reg(3).to_string(), "%3");
        assert_eq!(Operand::ConstI(-2).to_string(), "-2");
    }

    #[test]
    fn operand_accessors() {
        assert_eq!(Operand::Reg(Reg(1)).as_reg(), Some(Reg(1)));
        assert_eq!(Operand::ConstI(5).as_const_i(), Some(5));
        assert_eq!(Operand::ConstF(1.0).as_reg(), None);
    }

    #[test]
    fn vec_ty_properties() {
        assert!(BcTy::Vec(ScalarTy::I8).is_vec());
        assert_eq!(BcTy::Vec(ScalarTy::I8).elem(), Some(ScalarTy::I8));
        assert_eq!(BcTy::RealignToken.elem(), None);
    }
}

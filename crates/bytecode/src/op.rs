//! The vector idioms of the split layer (paper Table 1) plus the scalar
//! operations needed for bounds/address bookkeeping and scalar loop
//! bodies.

use vapor_ir::{BinOp, ScalarTy, UnOp};

use crate::ty::{Addr, Operand, Reg};

/// Shift amount for `shift_left/right` (Table 1): either one scalar
/// amount broadcast to all lanes (`val != 0` case) or per-lane amounts in
/// a vector register (`val == 0` case).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShiftAmt {
    /// Same amount for every lane.
    Scalar(Operand),
    /// Per-lane amounts.
    PerLane(Reg),
}

/// A pure operation defining one register (`dst = op`).
///
/// Vector operand/result lane counts follow Table 1 of the paper: `m`
/// denotes `get_VF(T)` for the op's element type `T`; widening ops
/// produce `m/2` lanes of the widened type, `pack` produces `m` lanes of
/// the narrowed type from two inputs, and `dot_product` accumulates into
/// `m/2` lanes of the widened type.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    // ----- machine parameters (materialized by the online stage) -----
    /// `get_VF(T)`: lanes of `T` per vector register (scalar `long`).
    ///
    /// `group` ties the materialized value to one vectorized loop group:
    /// the online stage materializes VF per group (the target's lane
    /// count, or 1 when it direct-scalarizes that group, Figure 3b).
    GetVf {
        /// Element type `T`.
        ty: ScalarTy,
        /// Loop group this VF belongs to.
        group: u32,
    },
    /// `get_align_limit(T)`: alignment requirement in elements of `T`.
    GetAlignLimit(ScalarTy),
    /// `loop_bound(vect, scalar)`: selects the bound according to whether
    /// the online stage emits vector or scalar code for the loop group.
    LoopBound {
        /// Bound used when the associated loop is vectorized.
        vect: Operand,
        /// Bound used when the associated loop is scalarized.
        scalar: Operand,
        /// Loop group whose vector/scalar decision selects the arm.
        group: u32,
    },

    // ----- vector initialization -----
    /// `init_uniform(T, val)`: `m` copies of `val`.
    InitUniform(ScalarTy, Operand),
    /// `init_affine(T, val, inc)`: `(val, val+inc, ..., val+(m-1)inc)`.
    InitAffine(ScalarTy, Operand, Operand),
    /// `init_reduc(T, val, default)`: `(val, default, ..., default)`.
    InitReduc(ScalarTy, Operand, Operand),

    // ----- reductions -----
    /// `reduc_plus(T, v)`: sum of lanes (scalar result).
    ReducPlus(ScalarTy, Reg),
    /// `reduc_max(T, v)`.
    ReducMax(ScalarTy, Reg),
    /// `reduc_min(T, v)`.
    ReducMin(ScalarTy, Reg),

    // ----- special computational idioms -----
    /// `dot_product(T, v1, v2, acc)`: pairwise widening multiply of `v1`
    /// and `v2` (element type `T`), pairs summed and added to `acc`
    /// (element type `widened(T)`, `m/2` lanes).
    DotProduct(ScalarTy, Reg, Reg, Reg),
    /// `widen_mult_hi(T, v1, v2)`: widening multiply of high halves.
    WidenMultHi(ScalarTy, Reg, Reg),
    /// `widen_mult_lo(T, v1, v2)`: widening multiply of low halves.
    WidenMultLo(ScalarTy, Reg, Reg),
    /// `pack(T, v1, v2)`: demote the `2m` elements of type `T` in
    /// `v1,v2` to `narrowed(T)`.
    Pack(ScalarTy, Reg, Reg),
    /// `unpack_hi(T, v)`: promote the high `m/2` elements to `widened(T)`.
    UnpackHi(ScalarTy, Reg),
    /// `unpack_lo(T, v)`: promote the low `m/2` elements to `widened(T)`.
    UnpackLo(ScalarTy, Reg),
    /// `cvt_int2fp(T, v)`: lane-wise int→float conversion (same width).
    CvtInt2Fp(ScalarTy, Reg),
    /// `cvt_fp2int(T, v)`: lane-wise float→int conversion (same width).
    CvtFp2Int(ScalarTy, Reg),

    // ----- elementwise arithmetic/logic -----
    /// Elementwise binary op (`add/sub/mul/div/min/max/and/or/xor`).
    VBin(BinOp, ScalarTy, Reg, Reg),
    /// Elementwise unary op (`neg`, `abs`, `sqrt`).
    VUn(UnOp, ScalarTy, Reg),
    /// `shift_left(T, v, amt)`.
    VShl(ScalarTy, Reg, ShiftAmt),
    /// `shift_right(T, v, amt)` (arithmetic for signed `T`).
    VShr(ScalarTy, Reg, ShiftAmt),

    // ----- data reorganization -----
    /// `extract(T, s, off, v...)`: lanes `off, off+s, off+2s, ...` from
    /// the concatenation of the sources (strided de-interleave).
    Extract {
        /// Element type.
        ty: ScalarTy,
        /// Stride `s >= 1`.
        stride: u8,
        /// Starting offset `off < s`.
        offset: u8,
        /// `stride` source vectors.
        srcs: Vec<Reg>,
    },
    /// `interleave_hi(T, v1, v2)`.
    InterleaveHi(ScalarTy, Reg, Reg),
    /// `interleave_lo(T, v1, v2)`.
    InterleaveLo(ScalarTy, Reg, Reg),

    // ----- memory -----
    /// `aload(addr)`: aligned vector load (addr guaranteed aligned).
    ALoad(ScalarTy, Addr),
    /// `align_load(addr)`: vector load from `floor(addr / VS) * VS`.
    AlignLoad(ScalarTy, Addr),
    /// `get_rt(addr, mis, mod)`: realignment token for `addr`.
    GetRt {
        /// Element type of the loads this token serves.
        ty: ScalarTy,
        /// Address whose misalignment the token captures.
        addr: Addr,
        /// Static misalignment hint in bytes (relative to `mod`).
        mis: u32,
        /// Modulo for the hint; `0` means unknown at offline time.
        modulo: u32,
    },
    /// `realign_load(v1, v2, rt, addr, mis, mod)`: functionally a vector
    /// load of `m` elements from `addr`; on aligned-only targets it is
    /// implemented by extracting from the surrounding aligned loads
    /// `v1`/`v2` using `rt`.
    RealignLoad {
        /// Element type.
        ty: ScalarTy,
        /// Aligned load covering the low part (aligned-only targets).
        lo: Option<Reg>,
        /// Aligned load covering the high part (aligned-only targets).
        hi: Option<Reg>,
        /// Realignment token from [`Op::GetRt`].
        rt: Option<Reg>,
        /// The address actually loaded from on other targets.
        addr: Addr,
        /// Static misalignment hint in bytes.
        mis: u32,
        /// Hint modulo; `0` = unknown.
        modulo: u32,
    },

    // ----- scalar operations -----
    /// Scalar binary op at the given type.
    SBin(BinOp, ScalarTy, Operand, Operand),
    /// Scalar unary op.
    SUn(UnOp, ScalarTy, Operand),
    /// Scalar conversion.
    SCast {
        /// Source type.
        from: ScalarTy,
        /// Destination type.
        to: ScalarTy,
        /// Value converted.
        arg: Operand,
    },
    /// Scalar load `base[index+offset]`.
    SLoad(ScalarTy, Addr),
    /// Copy a scalar or vector register / materialize a constant.
    Copy(Operand),
}

impl Op {
    /// Registers read by this op (order unspecified).
    pub fn uses(&self) -> Vec<Reg> {
        fn push_opnd(out: &mut Vec<Reg>, o: &Operand) {
            if let Operand::Reg(r) = o {
                out.push(*r);
            }
        }
        let mut out = Vec::new();
        match self {
            Op::GetVf { .. } | Op::GetAlignLimit(_) => {}
            Op::LoopBound { vect, scalar, .. } => {
                push_opnd(&mut out, vect);
                push_opnd(&mut out, scalar);
            }
            Op::InitUniform(_, a) => push_opnd(&mut out, a),
            Op::InitAffine(_, a, b) | Op::InitReduc(_, a, b) => {
                push_opnd(&mut out, a);
                push_opnd(&mut out, b);
            }
            Op::ReducPlus(_, r) | Op::ReducMax(_, r) | Op::ReducMin(_, r) => out.push(*r),
            Op::DotProduct(_, a, b, c) => out.extend([*a, *b, *c]),
            Op::WidenMultHi(_, a, b) | Op::WidenMultLo(_, a, b) | Op::Pack(_, a, b) => {
                out.extend([*a, *b])
            }
            Op::UnpackHi(_, a) | Op::UnpackLo(_, a) | Op::CvtInt2Fp(_, a) | Op::CvtFp2Int(_, a) => {
                out.push(*a)
            }
            Op::VBin(_, _, a, b) => out.extend([*a, *b]),
            Op::VUn(_, _, a) => out.push(*a),
            Op::VShl(_, v, amt) | Op::VShr(_, v, amt) => {
                out.push(*v);
                match amt {
                    ShiftAmt::Scalar(o) => push_opnd(&mut out, o),
                    ShiftAmt::PerLane(r) => out.push(*r),
                }
            }
            Op::Extract { srcs, .. } => out.extend(srcs.iter().copied()),
            Op::InterleaveHi(_, a, b) | Op::InterleaveLo(_, a, b) => out.extend([*a, *b]),
            Op::ALoad(_, addr) | Op::AlignLoad(_, addr) | Op::SLoad(_, addr) => {
                push_opnd(&mut out, &addr.index)
            }
            Op::GetRt { addr, .. } => push_opnd(&mut out, &addr.index),
            Op::RealignLoad {
                lo, hi, rt, addr, ..
            } => {
                out.extend(lo.iter().copied());
                out.extend(hi.iter().copied());
                out.extend(rt.iter().copied());
                push_opnd(&mut out, &addr.index);
            }
            Op::SBin(_, _, a, b) => {
                push_opnd(&mut out, a);
                push_opnd(&mut out, b);
            }
            Op::SUn(_, _, a) | Op::SCast { arg: a, .. } | Op::Copy(a) => push_opnd(&mut out, a),
        }
        out
    }

    /// Whether this op is one of the machine-parameter/alignment idioms
    /// that may expand to *no code* on some targets (§III-C of the paper).
    pub fn is_alignment_idiom(&self) -> bool {
        matches!(
            self,
            Op::GetRt { .. } | Op::AlignLoad(_, _) | Op::GetAlignLimit(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::ArraySym;

    #[test]
    fn uses_collects_all_registers() {
        let op = Op::DotProduct(ScalarTy::I16, Reg(1), Reg(2), Reg(3));
        assert_eq!(op.uses(), vec![Reg(1), Reg(2), Reg(3)]);

        let op = Op::RealignLoad {
            ty: ScalarTy::F32,
            lo: Some(Reg(4)),
            hi: Some(Reg(5)),
            rt: Some(Reg(6)),
            addr: Addr::new(ArraySym(0), Reg(7)),
            mis: 8,
            modulo: 32,
        };
        let uses = op.uses();
        for r in [4, 5, 6, 7] {
            assert!(uses.contains(&Reg(r)), "missing %{r}");
        }
    }

    #[test]
    fn extract_uses_all_sources() {
        let op = Op::Extract {
            ty: ScalarTy::I16,
            stride: 2,
            offset: 1,
            srcs: vec![Reg(1), Reg(9)],
        };
        assert_eq!(op.uses(), vec![Reg(1), Reg(9)]);
    }

    #[test]
    fn alignment_idioms_flagged() {
        assert!(Op::GetRt {
            ty: ScalarTy::F32,
            addr: Addr::new(ArraySym(0), Operand::ConstI(0)),
            mis: 0,
            modulo: 0
        }
        .is_alignment_idiom());
        assert!(!Op::GetVf {
            ty: ScalarTy::F32,
            group: 0
        }
        .is_alignment_idiom());
    }
}

//! Human-readable text form of the bytecode (the style of Figure 3a in
//! the paper). Used by examples, error messages, and golden tests.

use std::fmt::Write as _;

use crate::func::{BcFunction, BcModule};
use crate::op::{Op, ShiftAmt};
use crate::stmt::{BcStmt, GuardCond, LoopKind, OpClass, Step};
use crate::ty::{Addr, Operand};

fn fmt_addr(f: &BcFunction, a: &Addr) -> String {
    let name = &f.array(a.base).name;
    match (a.index, a.offset) {
        (Operand::ConstI(i), off) => format!("&{name}[{}]", i + off),
        (idx, 0) => format!("&{name}[{idx}]"),
        (idx, off) if off > 0 => format!("&{name}[{idx}+{off}]"),
        (idx, off) => format!("&{name}[{idx}{off}]"),
    }
}

fn fmt_op(f: &BcFunction, op: &Op) -> String {
    match op {
        Op::GetVf { ty, group } => format!("get_VF({ty}) @g{group}"),
        Op::GetAlignLimit(t) => format!("get_align_limit({t})"),
        Op::LoopBound {
            vect,
            scalar,
            group,
        } => {
            format!("loop_bound({vect}, {scalar}) @g{group}")
        }
        Op::InitUniform(t, v) => format!("init_uniform({t}, {v})"),
        Op::InitAffine(t, v, i) => format!("init_affine({t}, {v}, {i})"),
        Op::InitReduc(t, v, d) => format!("init_reduc({t}, {v}, {d})"),
        Op::ReducPlus(t, r) => format!("reduc_plus({t}, {r})"),
        Op::ReducMax(t, r) => format!("reduc_max({t}, {r})"),
        Op::ReducMin(t, r) => format!("reduc_min({t}, {r})"),
        Op::DotProduct(t, a, b, c) => format!("dot_product({t}, {a}, {b}, {c})"),
        Op::WidenMultHi(t, a, b) => format!("widen_mult_hi({t}, {a}, {b})"),
        Op::WidenMultLo(t, a, b) => format!("widen_mult_lo({t}, {a}, {b})"),
        Op::Pack(t, a, b) => format!("pack({t}, {a}, {b})"),
        Op::UnpackHi(t, a) => format!("unpack_hi({t}, {a})"),
        Op::UnpackLo(t, a) => format!("unpack_lo({t}, {a})"),
        Op::CvtInt2Fp(t, a) => format!("cvt_int2fp({t}, {a})"),
        Op::CvtFp2Int(t, a) => format!("cvt_fp2int({t}, {a})"),
        Op::VBin(op, t, a, b) => format!("v{}({t}, {a}, {b})", bin_name(*op)),
        Op::VUn(op, t, a) => format!("v{}({t}, {a})", op.name()),
        Op::VShl(t, v, amt) => format!("shift_left({t}, {v}, {})", fmt_amt(amt)),
        Op::VShr(t, v, amt) => format!("shift_right({t}, {v}, {})", fmt_amt(amt)),
        Op::Extract {
            ty,
            stride,
            offset,
            srcs,
        } => {
            let srcs: Vec<String> = srcs.iter().map(|r| r.to_string()).collect();
            format!(
                "extract({ty}, s={stride}, off={offset}, {})",
                srcs.join(", ")
            )
        }
        Op::InterleaveHi(t, a, b) => format!("interleave_hi({t}, {a}, {b})"),
        Op::InterleaveLo(t, a, b) => format!("interleave_lo({t}, {a}, {b})"),
        Op::ALoad(t, a) => format!("aload({t}, {})", fmt_addr(f, a)),
        Op::AlignLoad(t, a) => format!("align_load({t}, {})", fmt_addr(f, a)),
        Op::GetRt {
            ty,
            addr,
            mis,
            modulo,
        } => {
            format!(
                "get_rt({ty}, {}, mis={mis}, mod={modulo})",
                fmt_addr(f, addr)
            )
        }
        Op::RealignLoad {
            ty,
            lo,
            hi,
            rt,
            addr,
            mis,
            modulo,
        } => {
            let opt =
                |r: &Option<crate::ty::Reg>| r.map(|x| x.to_string()).unwrap_or_else(|| "_".into());
            format!(
                "realign_load({ty}, {}, {}, {}, {}, mis={mis}, mod={modulo})",
                opt(lo),
                opt(hi),
                opt(rt),
                fmt_addr(f, addr)
            )
        }
        Op::SBin(op, t, a, b) => format!("{}({t}, {a}, {b})", bin_name(*op)),
        Op::SUn(op, t, a) => format!("{}({t}, {a})", op.name()),
        Op::SCast { from, to, arg } => format!("cvt({from} -> {to}, {arg})"),
        Op::SLoad(t, a) => format!("load({t}, {})", fmt_addr(f, a)),
        Op::Copy(v) => format!("copy({v})"),
    }
}

fn bin_name(op: vapor_ir::BinOp) -> &'static str {
    use vapor_ir::BinOp::*;
    match op {
        Add => "add",
        Sub => "sub",
        Mul => "mul",
        Div => "div",
        Shl => "shl",
        Shr => "shr",
        And => "and",
        Or => "or",
        Xor => "xor",
        Min => "min",
        Max => "max",
        CmpEq => "cmpeq",
        CmpLt => "cmplt",
    }
}

fn fmt_amt(amt: &ShiftAmt) -> String {
    match amt {
        ShiftAmt::Scalar(o) => o.to_string(),
        ShiftAmt::PerLane(r) => format!("per_lane({r})"),
    }
}

/// Render a guard condition.
pub fn fmt_guard(f: &BcFunction, g: &GuardCond) -> String {
    match g {
        GuardCond::TypeSupported(t) => format!("type_supported({t})"),
        GuardCond::BaseAligned(a) => format!("base_aligned({})", f.array(*a).name),
        GuardCond::NoAlias(a, b) => {
            format!("no_alias({}, {})", f.array(*a).name, f.array(*b).name)
        }
        GuardCond::VsAtLeast(b) => format!("vs_at_least({b})"),
        GuardCond::StrideAligned { array, stride, ty } => {
            format!("stride_aligned({}, {stride}, {ty})", f.array(*array).name)
        }
        GuardCond::OpsSupported(cs) => {
            let parts: Vec<String> = cs
                .iter()
                .map(|c| {
                    match c {
                        OpClass::FDiv => "fdiv",
                        OpClass::FSqrt => "fsqrt",
                        OpClass::WidenMult => "widen_mult",
                        OpClass::Cvt => "cvt",
                        OpClass::DotProduct => "dot_product",
                        OpClass::PerLaneShift => "per_lane_shift",
                    }
                    .to_owned()
                })
                .collect();
            format!("ops_supported({})", parts.join(", "))
        }
        GuardCond::All(gs) => {
            let parts: Vec<String> = gs.iter().map(|g| fmt_guard(f, g)).collect();
            parts.join(" && ")
        }
    }
}

fn write_stmt(out: &mut String, f: &BcFunction, s: &BcStmt, indent: usize) {
    let pad = "  ".repeat(indent);
    match s {
        BcStmt::Def { dst, op } => {
            let _ = writeln!(out, "{pad}{dst}: {} = {}", f.reg_ty(*dst), fmt_op(f, op));
        }
        BcStmt::VStore {
            ty,
            addr,
            src,
            mis,
            modulo,
        } => {
            let _ = writeln!(
                out,
                "{pad}vstore({ty}, {}, {src}, mis={mis}, mod={modulo})",
                fmt_addr(f, addr)
            );
        }
        BcStmt::SStore { ty, addr, src } => {
            let _ = writeln!(out, "{pad}store({ty}, {}, {src})", fmt_addr(f, addr));
        }
        BcStmt::Loop {
            var,
            lo,
            limit,
            step,
            kind,
            group,
            body,
        } => {
            let step_s = match step {
                Step::Const(k) => format!("{k}"),
                Step::Vf(t, 1) => format!("vf({t})"),
                Step::Vf(t, k) => format!("{k}*vf({t})"),
            };
            let kind_s = match kind {
                LoopKind::Plain => String::new(),
                LoopKind::VectorMain => format!(" [vector @g{group}]"),
                LoopKind::ScalarPeel => format!(" [peel @g{group}]"),
                LoopKind::ScalarTail => format!(" [tail @g{group}]"),
            };
            let _ = writeln!(
                out,
                "{pad}loop {var} = {lo} .. {limit} step {step_s}{kind_s} {{"
            );
            for st in body {
                write_stmt(out, f, st, indent + 1);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        BcStmt::Version {
            cond,
            then_body,
            else_body,
        } => {
            let _ = writeln!(out, "{pad}version ({}) {{", fmt_guard(f, cond));
            for st in then_body {
                write_stmt(out, f, st, indent + 1);
            }
            let _ = writeln!(out, "{pad}}} else {{");
            for st in else_body {
                write_stmt(out, f, st, indent + 1);
            }
            let _ = writeln!(out, "{pad}}}");
        }
    }
}

/// Render one function.
pub fn print_function(f: &BcFunction) -> String {
    let mut out = String::new();
    let params: Vec<String> = f
        .params
        .iter()
        .enumerate()
        .map(|(i, p)| format!("%{i}:{} {}", p.ty, p.name))
        .collect();
    let arrays: Vec<String> = f
        .arrays
        .iter()
        .map(|a| {
            let k = match a.kind {
                vapor_ir::ArrayKind::Global => "global ",
                vapor_ir::ArrayKind::PointerParam => "",
            };
            format!("{k}{} {}[]", a.elem, a.name)
        })
        .collect();
    let _ = writeln!(
        out,
        "func {}({}; {}) {{",
        f.name,
        params.join(", "),
        arrays.join(", ")
    );
    for s in &f.body {
        write_stmt(&mut out, f, s, 1);
    }
    out.push_str("}\n");
    out
}

/// Render a whole module.
pub fn print_module(m: &BcModule) -> String {
    let mut out = String::new();
    for f in &m.funcs {
        out.push_str(&print_function(f));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{BcArray, BcParam};
    use crate::ty::{ArraySym, BcTy, Reg};
    use vapor_ir::{ArrayKind, ScalarTy};

    #[test]
    fn prints_figure3_style() {
        let mut f = BcFunction::new(
            "sum",
            vec![BcParam {
                name: "n".into(),
                ty: ScalarTy::I64,
            }],
            vec![BcArray {
                name: "a".into(),
                elem: ScalarTy::F32,
                kind: ArrayKind::Global,
            }],
        );
        let vf = f.fresh_reg(BcTy::Scalar(ScalarTy::I64));
        let vsum = f.fresh_reg(BcTy::Vec(ScalarTy::F32));
        let rt = f.fresh_reg(BcTy::RealignToken);
        let i = f.fresh_reg(BcTy::Scalar(ScalarTy::I64));
        let vx = f.fresh_reg(BcTy::Vec(ScalarTy::F32));
        f.body = vec![
            BcStmt::Def {
                dst: vf,
                op: Op::GetVf {
                    ty: ScalarTy::F32,
                    group: 1,
                },
            },
            BcStmt::Def {
                dst: vsum,
                op: Op::InitUniform(ScalarTy::F32, Operand::ConstF(0.0)),
            },
            BcStmt::Def {
                dst: rt,
                op: Op::GetRt {
                    ty: ScalarTy::F32,
                    addr: Addr::with_offset(ArraySym(0), Operand::ConstI(0), 2),
                    mis: 8,
                    modulo: 32,
                },
            },
            BcStmt::Loop {
                var: i,
                lo: Operand::ConstI(0),
                limit: Operand::Reg(Reg(0)),
                step: Step::Vf(ScalarTy::F32, 1),
                kind: LoopKind::VectorMain,
                group: 1,
                body: vec![BcStmt::Def {
                    dst: vx,
                    op: Op::RealignLoad {
                        ty: ScalarTy::F32,
                        lo: None,
                        hi: None,
                        rt: Some(rt),
                        addr: Addr::with_offset(ArraySym(0), Operand::Reg(i), 2),
                        mis: 8,
                        modulo: 32,
                    },
                }],
            },
        ];
        let text = print_function(&f);
        assert!(text.contains("get_VF(float) @g1"), "{text}");
        assert!(
            text.contains("get_rt(float, &a[2], mis=8, mod=32)"),
            "{text}"
        );
        assert!(
            text.contains("realign_load(float, _, _, %3, &a[%4+2], mis=8, mod=32)"),
            "{text}"
        );
        assert!(text.contains("step vf(float) [vector @g1]"), "{text}");
    }
}

//! Decoder robustness: arbitrary byte soup must never panic — only
//! (generation hand-rolled on the deterministic workspace PRNG; the
//! offline build has no proptest)
//! return `DecodeError` — and valid prefixes with flipped bytes must
//! never be silently misinterpreted as the original module.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vapor_bytecode::{decode_module, encode_module, BcFunction, BcModule, BcParam};
use vapor_ir::ScalarTy;

fn random_bytes(rng: &mut StdRng, lo: usize, hi: usize) -> Vec<u8> {
    let len = rng.gen_range(lo as i64..hi as i64) as usize;
    (0..len).map(|_| rng.gen_range(0..256_i64) as u8).collect()
}

#[test]
fn random_bytes_never_panic() {
    let mut rng = StdRng::from_seed([11; 32]);
    for _ in 0..256 {
        let bytes = random_bytes(&mut rng, 0, 512);
        let _ = decode_module(&bytes);
    }
}

#[test]
fn random_bytes_with_valid_magic_never_panic() {
    let mut rng = StdRng::from_seed([13; 32]);
    for _ in 0..256 {
        let mut bytes = random_bytes(&mut rng, 5, 512);
        bytes[0..4].copy_from_slice(b"VSBC");
        bytes[4] = 1;
        let _ = decode_module(&bytes);
    }
}

#[test]
fn bitflips_never_roundtrip_to_the_original() {
    let mut f = BcFunction::new(
        "probe",
        vec![BcParam {
            name: "n".into(),
            ty: ScalarTy::I64,
        }],
        vec![],
    );
    let r = f.fresh_reg(vapor_bytecode::BcTy::Scalar(ScalarTy::I64));
    f.body = vec![vapor_bytecode::BcStmt::Def {
        dst: r,
        op: vapor_bytecode::Op::Copy(vapor_bytecode::Operand::ConstI(7)),
    }];
    let m = BcModule::single(f);
    let bytes = encode_module(&m);
    for i in 0..bytes.len() {
        let mut corrupted = bytes.clone();
        corrupted[i] ^= 0x40;
        if let Ok(back) = decode_module(&corrupted) {
            assert_ne!(back, m, "bit flip at {i} decoded back to the original");
        }
    }
}

//! The paper's running example (Figures 2 and 3): `sum += a[i+2]`.
//!
//! Shows the split layer at work: one VF-parametric vectorized bytecode,
//! and the four different machine-code shapes the online stage derives
//! from it — explicit realignment on AltiVec (`lvsr`+`vperm`), implicit
//! realignment on SSE (`movdqu`), aligned code when the hints prove
//! alignment, and scalarized code on a target without SIMD.
//!
//! ```text
//! cargo run --release --example portability
//! ```

use vapor_core::{reference, Engine, ExecRequest};
use vapor_ir::{ArrayData, Bindings, ScalarTy, Value};
use vapor_targets::{altivec, neon64, scalar_only, sse};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 2a of the paper, with the reduction result stored to out[0].
    let kernel = vapor_frontend::parse_kernel(
        "kernel sum(long n, float a[], float out[]) {
           float s;
           s = 0.0;
           for (long i = 0; i < n; i++) {
             s += a[i + 2];
           }
           out[0] = s;
         }",
    )?;

    // ---- the split layer: one portable vectorized bytecode ----
    let split = vapor_vectorizer::vectorize(&kernel, &Default::default());
    println!("=== vectorized bytecode (the split layer, Figure 3a) ===\n");
    println!("{}", vapor_bytecode::print_function(&split.func));

    // ---- one bytecode, four machine-code shapes ----
    let n = 1024usize;
    let mut env = Bindings::new();
    let a: Vec<f64> = (0..n + 2).map(|i| (i % 7) as f64 * 0.25).collect();
    env.set_int("n", n as i64)
        .set_array("a", ArrayData::from_floats(ScalarTy::F32, &a))
        .set_array("out", ArrayData::zeroed(ScalarTy::F32, 1));
    let oracle = reference(&kernel, &env)?;
    let expected = match oracle.array("out").unwrap().get(0) {
        Value::Float(v) => v,
        v => panic!("unexpected {v:?}"),
    };

    let engine = Engine::new();
    for target in [sse(), altivec(), neon64(), scalar_only()] {
        let r = engine.execute(&ExecRequest::new(&kernel, &target, &env))?;
        let c = &r.compiled;
        let got = match r.out.array("out").unwrap().get(0) {
            Value::Float(v) => v,
            v => panic!("unexpected {v:?}"),
        };

        // Characterize the lowering strategy from the emitted code.
        let code = &c.jit.code;
        let uses = |pred: &dyn Fn(&vapor_targets::MInst) -> bool| code.insts.iter().any(pred);
        let strategy = if uses(&|i| matches!(i, vapor_targets::MInst::VPerm { .. })) {
            "explicit realignment (lvsr + vperm)"
        } else if uses(&|i| {
            matches!(
                i,
                vapor_targets::MInst::LoadV {
                    align: vapor_targets::MemAlign::Unaligned,
                    ..
                }
            )
        }) {
            "implicit realignment (movdqu-class misaligned loads)"
        } else if uses(&|i| matches!(i, vapor_targets::MInst::LoadV { .. })) {
            "aligned vector loads"
        } else {
            "scalarized (VF = 1)"
        };
        println!(
            "=== {} ===\n  strategy: {strategy}\n  cycles: {}  insts: {}  result ok: {}\n",
            target.name,
            r.stats.cycles,
            r.stats.insts,
            (got - expected).abs() <= 1e-3 * expected.abs().max(1.0),
        );
        // Print the vectorized inner loop for the curious.
        let text = vapor_targets::disasm(code);
        let interesting: Vec<&str> = text
            .lines()
            .filter(|l| l.contains('v') && !l.starts_with(';'))
            .take(8)
            .collect();
        for l in interesting {
            println!("   {l}");
        }
        println!();
    }

    // ---- the same bytecode on a vector-length-agnostic target ----
    //
    // One more machine-code shape: setvl-stripmined, predicated code
    // whose lane count is unknown until run time. The artifact is
    // compiled once; the engine specializes it per runtime VL.
    let family = vapor_targets::sve();
    println!("=== {} — one artifact, any runtime VL ===", family.name);
    let mut first = true;
    for vl_bits in vapor_targets::VLA_TEST_BITS {
        let r = engine.execute(&ExecRequest::new(&kernel, &family, &env).vl_bits(vl_bits))?;
        if first {
            first = false;
            let text = vapor_targets::disasm(&r.compiled.jit.code);
            for l in text
                .lines()
                .filter(|l| l.contains("setvl") || l.contains(".vl"))
                .take(6)
            {
                println!("   {l}");
            }
        }
        let got = match r.out.array("out").unwrap().get(0) {
            Value::Float(v) => v,
            v => panic!("unexpected {v:?}"),
        };
        println!(
            "  VL={vl_bits:>4}: cycles {:>6}  result ok: {}",
            r.stats.cycles,
            (got - expected).abs() <= 1e-3 * expected.abs().max(1.0),
        );
    }
    Ok(())
}

//! Build a kernel programmatically with [`vapor_ir::KernelBuilder`]
//! (no parser involved), inspect what the offline vectorizer makes of
//! it, and run the split flow end to end.
//!
//! The kernel is a fused multiply-add stencil with a misaligned load —
//! enough to trigger realignment handling and version guards.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use vapor_core::{reference, Engine, ExecRequest};
use vapor_ir::{ArrayData, BinOp, Bindings, Expr, KernelBuilder, ScalarTy};
use vapor_targets::{altivec, sse};
use vapor_vectorizer::{vectorize, VectorizeOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // y[i] = w0*x[i] + w1*x[i+1] - a three-point blur without the parser.
    let mut b = KernelBuilder::new("blur2");
    let n = b.scalar_param("n", ScalarTy::I64);
    let w0 = b.scalar_param("w0", ScalarTy::F32);
    let w1 = b.scalar_param("w1", ScalarTy::F32);
    let x = b.array_param("x", ScalarTy::F32);
    let y = b.array_param("y", ScalarTy::F32);
    let i = b.fresh_loop_var("i");
    b.for_loop(i, Expr::Int(0), Expr::Var(n), 1, |b| {
        let x_i = Expr::load(x, Expr::Var(i));
        let x_i1 = Expr::load(x, Expr::bin(BinOp::Add, Expr::Var(i), Expr::Int(1)));
        b.store(
            y,
            Expr::Var(i),
            Expr::bin(
                BinOp::Add,
                Expr::bin(BinOp::Mul, Expr::Var(w0), x_i),
                Expr::bin(BinOp::Mul, Expr::Var(w1), x_i1),
            ),
        );
    });
    let kernel = b.finish();
    vapor_ir::validate(&kernel)?;

    println!("=== kernel (pretty-printed mini-C) ===\n");
    println!("{}", vapor_ir::print_kernel(&kernel));

    let result = vectorize(&kernel, &VectorizeOptions::default());
    println!("=== offline vectorizer reports ===");
    for r in &result.reports {
        println!(
            "  {}: vectorized={} features={:?}",
            r.description, r.vectorized, r.features
        );
    }

    let n_elems = 509usize; // odd on purpose: the scalar tail loop runs
    let mut env = Bindings::new();
    let xs: Vec<f64> = (0..n_elems + 1).map(|k| (k as f64 * 0.1).sin()).collect();
    env.set_int("n", n_elems as i64)
        .set_float("w0", 0.75)
        .set_float("w1", 0.25)
        .set_array("x", ArrayData::from_floats(ScalarTy::F32, &xs))
        .set_array("y", ArrayData::zeroed(ScalarTy::F32, n_elems));

    let oracle = reference(&kernel, &env)?;
    let engine = Engine::new();
    for target in [sse(), altivec()] {
        let r = engine.execute(&ExecRequest::new(&kernel, &target, &env))?;
        let c = &r.compiled;
        vapor_core::arrays_match(oracle.array("y").unwrap(), r.out.array("y").unwrap(), 1e-5)
            .map_err(vapor_core::PipelineError)?;
        println!(
            "\n{}: {} cycles, {} dynamic insts, guards folded {}, runtime {}",
            target.name,
            r.stats.cycles,
            r.stats.insts,
            c.jit.stats.guards_folded,
            c.jit.stats.guards_runtime,
        );
    }
    println!("\nresults match the oracle on every target ✓ (n = {n_elems}, tail exercised)");
    Ok(())
}

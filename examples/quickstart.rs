//! Quickstart: auto-vectorize once, run everywhere.
//!
//! Writes a saxpy kernel in the mini-C kernel language, compiles it once
//! offline into portable vectorized bytecode, then runs it through the
//! online stage on every simulated SIMD target — and checks the result
//! against the reference interpreter.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vapor_core::{arrays_match, reference, Engine, ExecRequest, Flow};
use vapor_ir::{ArrayData, Bindings, ScalarTy};
use vapor_targets::{altivec, avx, neon64, scalar_only, sse};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = vapor_frontend::parse_kernel(
        "kernel saxpy(long n, float alpha, float x[], float y[]) {
           for (long i = 0; i < n; i++) {
             y[i] = alpha * x[i] + y[i];
           }
         }",
    )?;

    let n = 1000usize;
    let mut env = Bindings::new();
    env.set_int("n", n as i64)
        .set_float("alpha", 2.5)
        .set_array("x", ArrayData::from_floats(ScalarTy::F32, &vec![1.25; n]))
        .set_array("y", ArrayData::from_floats(ScalarTy::F32, &vec![1.0; n]));

    // The oracle: direct interpretation of the kernel's C semantics.
    let oracle = reference(&kernel, &env)?;

    // One engine for the whole process: each (flow, target) pair below
    // is compiled exactly once and cached.
    let engine = Engine::new();

    println!("saxpy, n = {n}: one portable bytecode, every target\n");
    println!(
        "{:<22} {:>14} {:>14} {:>9}",
        "target", "vector cycles", "scalar cycles", "speedup"
    );
    for target in [sse(), altivec(), neon64(), avx(), scalar_only()] {
        let req = ExecRequest::new(&kernel, &target, &env);
        let rv = engine.execute(&req.clone().flow(Flow::SplitVectorOpt))?;
        let rs = engine.execute(&req.flow(Flow::SplitScalarOpt))?;

        // Every target computes the same values.
        arrays_match(oracle.array("y").unwrap(), rv.out.array("y").unwrap(), 1e-6)
            .map_err(vapor_core::PipelineError)?;

        println!(
            "{:<22} {:>14} {:>14} {:>8.2}x",
            target.name,
            rv.stats.cycles,
            rs.stats.cycles,
            rs.stats.cycles as f64 / rv.stats.cycles as f64
        );
    }
    let s = engine.stats();
    println!("\nall targets match the reference interpreter ✓");
    println!("engine cache: {} compilations, {} hits", s.entries, s.hits);
    Ok(())
}

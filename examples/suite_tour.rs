//! Tour of the paper's benchmark suite: what the offline vectorizer does
//! with each of the 32 kernels and what that buys at run time on SSE.
//!
//! ```text
//! cargo run --release --example suite_tour
//! ```

use vapor_core::{compile, run, AllocPolicy, CompileConfig, Flow};
use vapor_kernels::{suite, Scale};
use vapor_targets::sse;
use vapor_vectorizer::{vectorize, VectorizeOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let target = sse();
    let cfg = CompileConfig::default();
    println!(
        "{:<18} {:<11} {:>8} {:<34}",
        "kernel", "vectorized", "speedup", "features"
    );
    println!("{}", "-".repeat(76));
    for spec in suite() {
        let kernel = spec.kernel();
        let v = vectorize(&kernel, &VectorizeOptions::default());
        let vectorized = v.reports.iter().any(|r| r.vectorized);
        let mut features: Vec<String> = Vec::new();
        for r in &v.reports {
            for f in &r.features {
                let s = format!("{f:?}");
                if !features.contains(&s) {
                    features.push(s);
                }
            }
        }

        let env = spec.env(Scale::Test);
        let vec = compile(&kernel, Flow::SplitVectorOpt, &target, &cfg)?;
        let sca = compile(&kernel, Flow::SplitScalarOpt, &target, &cfg)?;
        let cv = run(&target, &vec, &env, AllocPolicy::Aligned)?.stats.cycles;
        let cs = run(&target, &sca, &env, AllocPolicy::Aligned)?.stats.cycles;

        println!(
            "{:<18} {:<11} {:>7.2}x {:<34}",
            spec.name,
            if vectorized { "yes" } else { "no" },
            cs as f64 / cv.max(1) as f64,
            features.join(",")
        );
    }
    Ok(())
}

//! Tour of the paper's benchmark suite: what the offline vectorizer does
//! with each of the 32 kernels and what that buys at run time on SSE.
//!
//! ```text
//! cargo run --release --example suite_tour
//! ```

use vapor_core::{CompileJob, Engine, ExecRequest, Flow};
use vapor_kernels::{suite, Scale};
use vapor_targets::sse;
use vapor_vectorizer::{vectorize, VectorizeOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let target = sse();
    let engine = Engine::new();

    // Pre-compile the whole tour as one parallel batch; the loop below
    // then runs on cache hits alone.
    let specs = suite();
    let kernels: Vec<_> = specs.iter().map(|s| s.kernel()).collect();
    let mut jobs = Vec::new();
    for k in &kernels {
        for flow in [Flow::SplitVectorOpt, Flow::SplitScalarOpt] {
            jobs.push(CompileJob::new(k, flow, &target));
        }
    }
    engine.compile_batch(&jobs);

    println!(
        "{:<18} {:<11} {:>8} {:<34}",
        "kernel", "vectorized", "speedup", "features"
    );
    println!("{}", "-".repeat(76));
    for spec in suite() {
        let kernel = spec.kernel();
        let v = vectorize(&kernel, &VectorizeOptions::default());
        let vectorized = v.reports.iter().any(|r| r.vectorized);
        let mut features: Vec<String> = Vec::new();
        for r in &v.reports {
            for f in &r.features {
                let s = format!("{f:?}");
                if !features.contains(&s) {
                    features.push(s);
                }
            }
        }

        let env = spec.env(Scale::Test);
        let req = ExecRequest::new(&kernel, &target, &env);
        let cv = engine
            .execute(&req.clone().flow(Flow::SplitVectorOpt))?
            .stats
            .cycles;
        let cs = engine
            .execute(&req.flow(Flow::SplitScalarOpt))?
            .stats
            .cycles;

        println!(
            "{:<18} {:<11} {:>7.2}x {:<34}",
            spec.name,
            if vectorized { "yes" } else { "no" },
            cs as f64 / cv.max(1) as f64,
            features.join(",")
        );
    }
    let s = engine.stats();
    println!(
        "\nengine: {} unique compilations, {} cache hits ({} batch workers warmed the cache)",
        s.misses,
        s.hits,
        std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .min(jobs.len())
    );
    Ok(())
}

//! # vapor — Vapor SIMD: auto-vectorize once, run everywhere
//!
//! Facade crate re-exporting the whole reproduction. See the individual
//! crates for the subsystems:
//!
//! * [`vapor_ir`] — scalar kernel IR + reference interpreter (oracle);
//! * [`vapor_frontend`] — mini-C kernel language;
//! * [`vapor_vectorizer`] — the offline auto-vectorization stage;
//! * [`vapor_bytecode`] — the portable split layer (paper Table 1);
//! * [`vapor_jit`] — the online compilers (naive JIT / optimizing / native);
//! * [`vapor_targets`] — simulated SSE/AltiVec/NEON/AVX machines;
//! * [`vapor_kernels`] — the benchmark suite (Table 2 + Polybench);
//! * [`vapor_core`] — end-to-end pipelines and the execution harness.

pub use vapor_bytecode as bytecode;
pub use vapor_core as core;
pub use vapor_frontend as frontend;
pub use vapor_ir as ir;
pub use vapor_jit as jit;
pub use vapor_kernels as kernels;
pub use vapor_targets as targets;
pub use vapor_vectorizer as vectorizer;

//! Golden disassembly tests for closure-threaded programs: the region
//! structure, arena slot assignments, and address streams of three
//! representative kernels are snapshotted so a silently-weakened
//! threading pass (streams no longer qualifying, regions splintering,
//! fused steps falling back to generic ops) fails loudly instead of
//! just benching slower.
//!
//! Snapshots live under `tests/golden/`; regenerate after an
//! *intentional* codegen or threading change with
//! `UPDATE_GOLDEN=1 cargo test --test threaded_golden`.

use vapor_core::{CompileConfig, Engine, Flow};
use vapor_kernels::suite;
use vapor_targets::{disasm_threaded, sse, sve};

/// The representative kernels snapshotted per target family: the
/// canonical two-array stream (`saxpy`), a reduction with an inner loop
/// (`convolve`), and a stencil with loop-carried reuse (`seidel`) —
/// together they exercise streams, nested regions, and the arena's
/// fused three-op steps.
const GOLDEN_KERNELS: [&str; 3] = ["saxpy_fp", "convolve_s32", "seidel_fp"];

fn check_golden(tag: &str, text: &str) {
    let path = format!(
        "{}/tests/golden/{tag}.txt",
        env!("CARGO_MANIFEST_DIR").trim_end_matches('/')
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, text).unwrap_or_else(|e| panic!("write {path}: {e}"));
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {path}: {e} (run with UPDATE_GOLDEN=1 to create)"));
    assert_eq!(
        text, want,
        "threaded disassembly of {tag} drifted from the golden snapshot; \
         if the change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn threaded_disassembly_matches_goldens_on_fixed_width() {
    let engine = Engine::new();
    let cfg = CompileConfig::default();
    for name in GOLDEN_KERNELS {
        let spec = suite().into_iter().find(|s| s.name == name).unwrap();
        let target = sse();
        let (_, prog) = engine
            .thread(
                &spec.kernel(),
                Flow::SplitVectorOpt,
                &target,
                &cfg,
                target.vs * 8,
            )
            .unwrap();
        check_golden(&format!("threaded_{name}_sse"), &disasm_threaded(&prog));
    }
}

#[test]
fn threaded_disassembly_matches_goldens_on_runtime_vl() {
    let engine = Engine::new();
    let cfg = CompileConfig::default();
    for name in GOLDEN_KERNELS {
        let spec = suite().into_iter().find(|s| s.name == name).unwrap();
        let (_, prog) = engine
            .thread(&spec.kernel(), Flow::SplitVectorOpt, &sve(), &cfg, 512)
            .unwrap();
        check_golden(&format!("threaded_{name}_sve512"), &disasm_threaded(&prog));
    }
}

/// The threading pass must actually stream the suite: the affine-index
/// golden kernels' loops qualify for address streams on SSE, so a
/// qualification regression shows up as a hard failure, not a snapshot
/// churn. (`seidel` is the documented counter-example: its addresses go
/// through per-iteration derived scalar chains — `a[i*n + j]` — whose
/// index registers are written in the body, so no leg can be streamed
/// from loop-header state; its threaded win is region batching alone.)
#[test]
fn affine_golden_kernels_stream_their_loops() {
    let engine = Engine::new();
    let cfg = CompileConfig::default();
    for (name, streams) in [
        ("saxpy_fp", true),
        ("convolve_s32", true),
        ("seidel_fp", false),
    ] {
        let spec = suite().into_iter().find(|s| s.name == name).unwrap();
        let target = sse();
        let (_, prog) = engine
            .thread(
                &spec.kernel(),
                Flow::SplitVectorOpt,
                &target,
                &cfg,
                target.vs * 8,
            )
            .unwrap();
        assert_eq!(
            prog.streamed_loops() > 0,
            streams,
            "{name}: expected streamed_loops > 0 == {streams}, got {}",
            prog.streamed_loops()
        );
    }
}

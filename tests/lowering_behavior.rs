//! Pin the online stage's §III-C translation strategies: the *shape* of
//! the machine code each target gets from the same portable bytecode.

use std::sync::OnceLock;

use vapor_core::{CompileConfig, Engine, Flow};
use vapor_kernels::find;
use vapor_targets::{altivec, neon64, scalar_only, sse, MInst, MemAlign};

/// One shared engine: several tests inspect the same (kernel, flow,
/// target) tuples, so they share compilations.
fn engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(Engine::new)
}

fn code_for(kernel_name: &str, flow: Flow, target: &vapor_targets::TargetDesc) -> Vec<MInst> {
    let spec = find(kernel_name).unwrap();
    engine()
        .compile(&spec.kernel(), flow, target, &CompileConfig::default())
        .unwrap()
        .jit
        .code
        .insts
        .clone()
}

fn sum_kernel() -> vapor_ir::Kernel {
    vapor_frontend::parse_kernel(
        "kernel sum(long n, float a[], float out[]) {
           float s;
           s = 0.0;
           for (long i = 0; i < n; i++) { s += a[i + 2]; }
           out[0] = s;
         }",
    )
    .unwrap()
}

/// §III-C(a): AltiVec translates `realign_load` to `vperm` fed by `lvsr`
/// and floor-aligned loads — Figure 2d.
#[test]
fn altivec_uses_explicit_realignment() {
    let c = engine()
        .compile(
            &sum_kernel(),
            Flow::SplitVectorOpt,
            &altivec(),
            &CompileConfig::default(),
        )
        .unwrap();
    let insts = &c.jit.code.insts;
    assert!(
        insts.iter().any(|i| matches!(i, MInst::VPerm { .. })),
        "no vperm"
    );
    assert!(
        insts.iter().any(|i| matches!(i, MInst::VPermCtrl { .. })),
        "no lvsr"
    );
    assert!(
        insts.iter().any(|i| matches!(i, MInst::LoadVFloor { .. })),
        "no floor loads"
    );
    // Aligned-only target: no misaligned vector access anywhere.
    assert!(!insts.iter().any(|i| matches!(
        i,
        MInst::LoadV {
            align: MemAlign::Unaligned,
            ..
        } | MInst::StoreV {
            align: MemAlign::Unaligned,
            ..
        }
    )));
}

/// §III-C(b): SSE translates the same bytecode with misaligned loads and
/// generates *no code* for `get_rt`/`align_load` — Figure 2c.
#[test]
fn sse_uses_implicit_realignment_and_drops_realign_idioms() {
    let c = engine()
        .compile(
            &sum_kernel(),
            Flow::SplitVectorOpt,
            &sse(),
            &CompileConfig::default(),
        )
        .unwrap();
    let insts = &c.jit.code.insts;
    assert!(
        insts.iter().any(|i| matches!(
            i,
            MInst::LoadV {
                align: MemAlign::Unaligned,
                ..
            }
        )),
        "no movdqu-class load"
    );
    assert!(
        !insts.iter().any(|i| matches!(i, MInst::VPerm { .. })),
        "vperm on SSE"
    );
    assert!(
        !insts.iter().any(|i| matches!(i, MInst::LoadVFloor { .. })),
        "align_load should expand to no code on SSE"
    );
    assert!(
        !insts.iter().any(|i| matches!(i, MInst::VPermCtrl { .. })),
        "get_rt should expand to no code on SSE"
    );
}

/// §III-C(d), Figure 3b: a target without SIMD gets clean scalar code —
/// no vector instructions, no helper calls.
#[test]
fn scalar_target_gets_pure_scalar_code() {
    for name in [
        "dscal_fp",
        "saxpy_fp",
        "dissolve_fp",
        "sfir_s16",
        "dissolve_s8",
    ] {
        let insts = code_for(name, Flow::SplitVectorOpt, &scalar_only());
        let vectorish = insts.iter().any(|i| {
            matches!(
                i,
                MInst::LoadV { .. }
                    | MInst::StoreV { .. }
                    | MInst::VBin { .. }
                    | MInst::VDotAcc { .. }
                    | MInst::VHelper { .. }
                    | MInst::VPerm { .. }
                    | MInst::Splat { .. }
            )
        });
        assert!(
            !vectorish,
            "{name}: vector instructions on the scalar-only target"
        );
    }
}

/// The Mono-class pipeline really spills everything and routes x86
/// scalar floats through the x87 stack; the optimizing pipeline does
/// neither.
#[test]
fn naive_pipeline_spills_and_uses_x87() {
    let naive = code_for("saxpy_fp", Flow::SplitScalarNaive, &sse());
    assert!(
        naive.iter().any(|i| matches!(i, MInst::SpillLd { .. })),
        "no reloads"
    );
    assert!(
        naive.iter().any(|i| matches!(i, MInst::FpuBin { .. })),
        "no x87 ops"
    );

    let opt = code_for("saxpy_fp", Flow::SplitScalarOpt, &sse());
    assert!(!opt
        .iter()
        .any(|i| matches!(i, MInst::SpillLd { .. } | MInst::FpuBin { .. })));

    // x87 is an x86 artifact: the naive pipeline on AltiVec has spills
    // but no FPU-stack traffic.
    let ppc = code_for("saxpy_fp", Flow::SplitScalarNaive, &altivec());
    assert!(ppc.iter().any(|i| matches!(i, MInst::SpillLd { .. })));
    assert!(!ppc.iter().any(|i| matches!(i, MInst::FpuBin { .. })));
}

/// Strided stores lower to `interleave` + two wide stores.
#[test]
fn interp_uses_interleave_stores() {
    let insts = code_for("interp_s16", Flow::SplitVectorOpt, &sse());
    assert!(insts.iter().any(|i| matches!(i, MInst::VInterleave { .. })));
}

/// The NEON backend expands widening multiplies via library helpers
/// (dissolve); AltiVec has the native instruction.
#[test]
fn widen_mult_helper_only_on_neon() {
    let neon = code_for("dissolve_s8", Flow::SplitVectorOpt, &neon64());
    assert!(
        neon.iter().any(|i| matches!(i, MInst::VHelper { .. })),
        "NEON should call helpers"
    );
    let av = code_for("dissolve_s8", Flow::SplitVectorOpt, &altivec());
    assert!(av.iter().any(|i| matches!(i, MInst::VWidenMul { .. })));
    assert!(!av.iter().any(|i| matches!(i, MInst::VHelper { .. })));
}

/// The dot-product idiom lowers to the `pmaddwd`-class instruction.
#[test]
fn sfir_uses_dot_product_instruction() {
    for t in [sse(), altivec(), neon64()] {
        let insts = code_for("sfir_s16", Flow::SplitVectorOpt, &t);
        assert!(
            insts.iter().any(|i| matches!(i, MInst::VDotAcc { .. })),
            "{}: no dot-product instruction",
            t.name
        );
    }
}

/// Guard accounting: the optimizing online flow must keep alignment/alias
/// conditions as (hoisted) runtime tests, while the memory-owning naive
/// JIT folds them.
#[test]
fn guard_resolution_matrix() {
    let spec = find("saxpy_fp").unwrap();
    let cfg = CompileConfig::default();
    let opt = engine()
        .compile(&spec.kernel(), Flow::SplitVectorOpt, &sse(), &cfg)
        .unwrap();
    assert!(
        opt.jit.stats.guards_runtime >= 1,
        "opt: {:?}",
        opt.jit.stats
    );
    let naive = engine()
        .compile(&spec.kernel(), Flow::SplitVectorNaive, &sse(), &cfg)
        .unwrap();
    assert!(
        naive.jit.stats.guards_folded >= 1,
        "naive: {:?}",
        naive.jit.stats
    );
    assert_eq!(
        naive.jit.stats.guards_runtime, 0,
        "naive: {:?}",
        naive.jit.stats
    );
}

/// AltiVec has no 64-bit elements: the `type_supported(double)` guard
/// folds to the scalar arm and no vector code remains.
#[test]
fn doubles_fold_to_scalar_arm_on_altivec() {
    let insts = code_for("saxpy_dp", Flow::SplitVectorOpt, &altivec());
    assert!(!insts
        .iter()
        .any(|i| matches!(i, MInst::LoadV { .. } | MInst::VBin { .. })));
    let sse_insts = code_for("saxpy_dp", Flow::SplitVectorOpt, &sse());
    assert!(sse_insts.iter().any(|i| matches!(i, MInst::VBin { .. })));
}

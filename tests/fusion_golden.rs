//! Golden disassembly tests for fused programs, plus the hit-count
//! assertions that keep the fusion pass honest: a silently-disabled (or
//! silently-weakened) pass fails these tests instead of just benching
//! slower.
//!
//! Snapshots live under `tests/golden/`; regenerate after an
//! *intentional* codegen or fusion change with
//! `UPDATE_GOLDEN=1 cargo test --test fusion_golden`.

use vapor_core::{CompileConfig, Engine, Flow};
use vapor_kernels::suite;
use vapor_targets::{disasm_decoded, rvv, sse, sve};

/// The representative kernels snapshotted per target family: a
/// streaming map (`dscal`), the canonical two-array stream (`saxpy`),
/// and a reduction (`convolve`) — together they exercise every fusion
/// pattern.
const GOLDEN_KERNELS: [&str; 3] = ["dscal_fp", "saxpy_fp", "convolve_s32"];

fn check_golden(tag: &str, text: &str) {
    let path = format!(
        "{}/tests/golden/{tag}.txt",
        env!("CARGO_MANIFEST_DIR").trim_end_matches('/')
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, text).unwrap_or_else(|e| panic!("write {path}: {e}"));
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {path}: {e} (run with UPDATE_GOLDEN=1 to create)"));
    assert_eq!(
        text, want,
        "fused disassembly of {tag} drifted from the golden snapshot; \
         if the change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn fused_disassembly_matches_goldens_on_fixed_width() {
    let engine = Engine::new();
    let cfg = CompileConfig::default();
    for name in GOLDEN_KERNELS {
        let spec = suite().into_iter().find(|s| s.name == name).unwrap();
        let c = engine
            .compile(&spec.kernel(), Flow::SplitVectorOpt, &sse(), &cfg)
            .unwrap();
        check_golden(&format!("{name}_sse"), &disasm_decoded(&c.jit.decoded));
    }
}

#[test]
fn fused_disassembly_matches_goldens_on_runtime_vl() {
    let engine = Engine::new();
    let cfg = CompileConfig::default();
    for name in GOLDEN_KERNELS {
        let spec = suite().into_iter().find(|s| s.name == name).unwrap();
        let (_, prog) = engine
            .specialize(&spec.kernel(), Flow::SplitVectorOpt, &sve(), &cfg, 512)
            .unwrap();
        check_golden(&format!("{name}_sve512"), &disasm_decoded(&prog));
    }
}

/// Every expected pattern must actually fire somewhere in the suite —
/// per-pattern, not just in aggregate.
#[test]
fn every_fusion_pattern_fires_on_the_suite() {
    let engine = Engine::new();
    let cfg = CompileConfig::default();
    let mut total = vapor_targets::FusionStats::default();
    for spec in suite() {
        let kernel = spec.kernel();
        if let Ok(c) = engine.compile(&kernel, Flow::SplitVectorOpt, &sse(), &cfg) {
            let s = c.jit.decoded.fusion_stats();
            total.load_bin_store += s.load_bin_store;
            total.load_bin_bin += s.load_bin_bin;
            total.load_bin += s.load_bin;
            total.bin_store += s.bin_store;
            total.latch += s.latch;
        }
        for family in [sve(), rvv()] {
            if let Ok((_, p)) = engine.specialize(&kernel, Flow::SplitVectorOpt, &family, &cfg, 512)
            {
                total.load_bin_store_vl += p.fusion_stats().load_bin_store_vl;
            }
        }
    }
    assert!(total.load_bin_store > 0, "LoadV→VBin→StoreV never fired");
    assert!(total.load_bin_bin > 0, "LoadV→VBin→VBin never fired");
    assert!(
        total.load_bin_store_vl > 0,
        "LoadVl→VBinVl→StoreVl never fired"
    );
    assert!(total.load_bin > 0, "LoadV→VBin never fired");
    assert!(total.bin_store > 0, "VBin→StoreV never fired");
    assert!(total.latch > 0, "SBinImm→branch latch never fired");
}

/// The acceptance bar of the fusion PR: a three-op superinstruction
/// fires on at least half the suite kernels (SSE, optimizing flow), and
/// the loop latch fires on every kernel with a loop.
#[test]
fn three_op_fusion_fires_on_at_least_half_the_suite() {
    let engine = Engine::new();
    let cfg = CompileConfig::default();
    let mut three = 0usize;
    let mut latched = 0usize;
    let mut total = 0usize;
    for spec in suite() {
        let Ok(c) = engine.compile(&spec.kernel(), Flow::SplitVectorOpt, &sse(), &cfg) else {
            continue;
        };
        let s = c.jit.decoded.fusion_stats();
        total += 1;
        if s.three_op() > 0 {
            three += 1;
        }
        if s.latch > 0 {
            latched += 1;
        }
    }
    assert!(
        three * 2 >= total,
        "three-op fusion fires on only {three}/{total} suite kernels"
    );
    assert_eq!(latched, total, "every suite kernel has a fusible latch");
}

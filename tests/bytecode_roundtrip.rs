//! The interoperability boundary: every artifact the offline stage
//! produces for the full suite must encode, decode bit-identically, and
//! re-verify — in both split and scalar forms.

use vapor_bytecode::{decode_module, encode_module, verify_function, BcModule};
use vapor_kernels::suite;
use vapor_vectorizer::{emit_scalar_function, vectorize, VectorizeOptions};

#[test]
fn every_suite_artifact_roundtrips() {
    for spec in suite() {
        let kernel = spec.kernel();
        for (what, func) in [
            (
                "split",
                vectorize(&kernel, &VectorizeOptions::default()).func,
            ),
            (
                "split-noalign",
                vectorize(
                    &kernel,
                    &VectorizeOptions {
                        no_alignment_opts: true,
                        ..Default::default()
                    },
                )
                .func,
            ),
            ("scalar", emit_scalar_function(&kernel)),
        ] {
            verify_function(&func).unwrap_or_else(|e| panic!("{} ({what}): {e}", spec.name));
            let module = BcModule::single(func);
            let bytes = encode_module(&module);
            let back =
                decode_module(&bytes).unwrap_or_else(|e| panic!("{} ({what}): {e}", spec.name));
            assert_eq!(module, back, "{} ({what}): lossy round-trip", spec.name);
            // And the decoded form still verifies.
            verify_function(&back.funcs[0]).unwrap();
        }
    }
}

#[test]
fn truncated_suite_bytecode_never_decodes() {
    // Spot-check a large artifact at many truncation points.
    let spec = vapor_kernels::find("gemver_fp").unwrap();
    let func = vectorize(&spec.kernel(), &VectorizeOptions::default()).func;
    let bytes = encode_module(&BcModule::single(func));
    let step = (bytes.len() / 97).max(1);
    for cut in (0..bytes.len()).step_by(step) {
        assert!(
            decode_module(&bytes[..cut]).is_err(),
            "cut at {cut} accepted"
        );
    }
}

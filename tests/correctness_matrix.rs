//! The central integration test: every kernel of the suite, compiled
//! through every flow, executed on every target, must match the
//! reference interpreter.

use vapor_core::{arrays_match, reference, run, AllocPolicy, CompileConfig, Engine, Flow};
use vapor_kernels::{suite, Scale};
use vapor_targets::{altivec, avx, neon64, scalar_only, sse, TargetDesc};

fn targets() -> Vec<TargetDesc> {
    vec![sse(), altivec(), neon64(), avx(), scalar_only()]
}

#[test]
fn every_kernel_every_flow_every_target_matches_oracle() {
    let engine = Engine::new();
    let cfg = CompileConfig::default();
    for spec in suite() {
        let kernel = spec.kernel();
        let env = spec.env(Scale::Test);
        let oracle = reference(&kernel, &env)
            .unwrap_or_else(|e| panic!("{}: oracle failed: {e}", spec.name));
        for target in targets() {
            for flow in Flow::ALL {
                let compiled = engine
                    .compile(&kernel, flow, &target, &cfg)
                    .unwrap_or_else(|e| {
                        panic!(
                            "{} [{flow} on {}]: compile failed: {e}",
                            spec.name, target.name
                        )
                    });
                let result = run(&target, &compiled, &env, AllocPolicy::Aligned)
                    .unwrap_or_else(|e| panic!("{} [{flow} on {}]: {e}", spec.name, target.name));
                for (name, expected) in oracle.arrays() {
                    let actual = result.out.array(name).unwrap();
                    arrays_match(expected, actual, 2e-4).unwrap_or_else(|e| {
                        panic!(
                            "{} [{flow} on {}]: array {name} mismatch: {e}",
                            spec.name, target.name
                        )
                    });
                }
            }
        }
    }
}

#[test]
fn misaligned_arrays_still_execute_correctly() {
    // The fall-back (no-hints) versions must be correct when the runtime
    // cannot align arrays (split flows; the runtime check then fails).
    let engine = Engine::new();
    let cfg = CompileConfig::default();
    for spec in suite().into_iter().filter(|s| s.expect_vectorized) {
        let kernel = spec.kernel();
        let env = spec.env(Scale::Test);
        let oracle = reference(&kernel, &env).unwrap();
        for target in [sse(), altivec(), neon64()] {
            let flow = Flow::SplitVectorOpt;
            let compiled = engine.compile(&kernel, flow, &target, &cfg).unwrap();
            let result = run(&target, &compiled, &env, AllocPolicy::Misaligned(4))
                .unwrap_or_else(|e| panic!("{} on {}: {e}", spec.name, target.name));
            for (name, expected) in oracle.arrays() {
                arrays_match(expected, result.out.array(name).unwrap(), 2e-4).unwrap_or_else(|e| {
                    panic!("{} on {} (misaligned): {name}: {e}", spec.name, target.name)
                });
            }
        }
    }
}

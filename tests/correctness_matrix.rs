//! The central integration test: every kernel of the suite, compiled
//! through every flow, executed on every target, must match the
//! reference interpreter.

use vapor_core::{arrays_match, reference, AllocPolicy, Engine, ExecRequest, Flow};
use vapor_kernels::{suite, Scale};
use vapor_targets::{altivec, avx, neon64, rvv, scalar_only, sse, sve, TargetDesc, VLA_TEST_BITS};

fn targets() -> Vec<TargetDesc> {
    // The VLA families appear here in their VL-agnostic form: a plain
    // `run()` executes them at the family-minimum 128-bit width.
    vec![
        sse(),
        altivec(),
        neon64(),
        avx(),
        scalar_only(),
        sve(),
        rvv(),
    ]
}

#[test]
fn every_kernel_every_flow_every_target_matches_oracle() {
    let engine = Engine::new();
    for spec in suite() {
        let kernel = spec.kernel();
        let env = spec.env(Scale::Test);
        let oracle = reference(&kernel, &env)
            .unwrap_or_else(|e| panic!("{}: oracle failed: {e}", spec.name));
        for target in targets() {
            for flow in Flow::ALL {
                let result = engine
                    .execute(&ExecRequest::new(&kernel, &target, &env).flow(flow))
                    .unwrap_or_else(|e| panic!("{} [{flow} on {}]: {e}", spec.name, target.name));
                for (name, expected) in oracle.arrays() {
                    let actual = result.out.array(name).unwrap();
                    arrays_match(expected, actual, 2e-4).unwrap_or_else(|e| {
                        panic!(
                            "{} [{flow} on {}]: array {name} mismatch: {e}",
                            spec.name, target.name
                        )
                    });
                }
            }
        }
    }
}

#[test]
fn vla_targets_match_oracle_at_every_runtime_vl() {
    // The VLA correctness matrix: every suite kernel, compiled *once*
    // per (flow, family) into a VL-agnostic artifact, then specialized
    // and executed at every tested runtime vector length. Integer
    // results are compared bit-exactly (arrays_match is exact for
    // integer elements); float reductions get the same reassociation
    // tolerance as the fixed-width matrix.
    let engine = Engine::new();
    for spec in suite() {
        let kernel = spec.kernel();
        let env = spec.env(Scale::Test);
        let oracle = reference(&kernel, &env)
            .unwrap_or_else(|e| panic!("{}: oracle failed: {e}", spec.name));
        for family in [sve(), rvv()] {
            for flow in [
                Flow::SplitVectorNaive,
                Flow::SplitVectorOpt,
                Flow::NativeVector,
            ] {
                let mut cycles_by_vl = Vec::new();
                for vl in VLA_TEST_BITS {
                    let result = engine
                        .execute(
                            &ExecRequest::new(&kernel, &family, &env)
                                .flow(flow)
                                .vl_bits(vl),
                        )
                        .unwrap_or_else(|e| {
                            panic!("{} [{flow} on {} @VL={vl}]: {e}", spec.name, family.name)
                        });
                    for (name, expected) in oracle.arrays() {
                        let actual = result.out.array(name).unwrap();
                        arrays_match(expected, actual, 2e-4).unwrap_or_else(|e| {
                            panic!(
                                "{} [{flow} on {} @VL={vl}]: array {name} mismatch: {e}",
                                spec.name, family.name
                            )
                        });
                    }
                    cycles_by_vl.push(result.stats.cycles);
                }
                // The widest vectors must never cost more than the
                // narrowest for the same artifact. (Intermediate VLs
                // need not be pairwise monotone: reductions cost
                // log2(lanes) halving steps, which at test-scale trip
                // counts can locally outweigh the saved iterations.)
                let (first, last) = (cycles_by_vl[0], *cycles_by_vl.last().unwrap());
                assert!(
                    last <= first,
                    "{} [{flow} on {}]: VL=2048 costlier than VL=128: {cycles_by_vl:?}",
                    spec.name,
                    family.name
                );
            }
        }
    }
    // One compile per (kernel, flow, family): the VL dimension must not
    // have multiplied the compile cache.
    assert_eq!(engine.stats().entries, 32 * 3 * 2);
}

#[test]
fn misaligned_arrays_still_execute_correctly() {
    // The fall-back (no-hints) versions must be correct when the runtime
    // cannot align arrays (split flows; the runtime check then fails).
    let engine = Engine::new();
    for spec in suite().into_iter().filter(|s| s.expect_vectorized) {
        let kernel = spec.kernel();
        let env = spec.env(Scale::Test);
        let oracle = reference(&kernel, &env).unwrap();
        for target in [sse(), altivec(), neon64()] {
            let req = ExecRequest::new(&kernel, &target, &env).policy(AllocPolicy::Misaligned(4));
            let result = engine
                .execute(&req)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", spec.name, target.name));
            for (name, expected) in oracle.arrays() {
                arrays_match(expected, result.out.array(name).unwrap(), 2e-4).unwrap_or_else(|e| {
                    panic!("{} on {} (misaligned): {name}: {e}", spec.name, target.name)
                });
            }
        }
    }
}

//! Superinstruction fusion differential tests: every suite kernel on
//! every target runs once through the fused decode (the production
//! path) and once through an unfused decode — machine state, cycles and
//! instruction counts must be bit-identical. Mirrors the PR 4
//! sized-vs-wide register-file harness: fusion is a pure dispatch-layer
//! optimization, so *any* observable difference is a fusion bug.

use vapor_core::{arrays_match, CompileConfig, Engine, ExecRequest, Flow};
use vapor_kernels::{suite, Scale};
use vapor_targets::{avx, neon64, rvv, sse, sve, DecodedProgram};

/// Fused vs unfused on every fixed-width target, both online flows the
/// PR 4 harness covered.
#[test]
fn fused_and_unfused_dispatch_agree_on_every_suite_kernel() {
    let engine = Engine::new();
    for spec in suite() {
        let kernel = spec.kernel();
        let env = spec.env(Scale::Test);
        for target in [sse(), neon64(), avx()] {
            for flow in [Flow::SplitVectorOpt, Flow::NativeVector] {
                let req = ExecRequest::new(&kernel, &target, &env).flow(flow);
                let fused = engine
                    .execute(&req)
                    .unwrap_or_else(|e| panic!("{} [{flow} on {}]: {e}", spec.name, target.name));
                let unfused = engine
                    .execute(&req.clone().fused(false))
                    .unwrap_or_else(|e| panic!("{} [{flow} on {}]: {e}", spec.name, target.name));
                for (name, expected) in fused.out.arrays() {
                    // Bit-exact: tolerance 0.
                    arrays_match(expected, unfused.out.array(name).unwrap(), 0.0).unwrap_or_else(
                        |e| {
                            panic!(
                                "{} [{flow} on {}]: array {name} diverged: {e}",
                                spec.name, target.name
                            )
                        },
                    );
                }
                assert_eq!(
                    fused.stats, unfused.stats,
                    "{} [{flow} on {}]: cycles/insts diverged",
                    spec.name, target.name
                );
            }
        }
    }
}

/// The same differential on the runtime-VL families across the full VL
/// range: the fused side goes through `Engine::specialize` (the per-VL
/// LRU cache re-specializing the fused decode), the unfused side is a
/// fresh unfused decode at the concrete width.
#[test]
fn fused_and_unfused_dispatch_agree_at_every_runtime_vl() {
    let engine = Engine::new();
    for spec in suite() {
        let kernel = spec.kernel();
        let env = spec.env(Scale::Test);
        for family in [sve(), rvv()] {
            for vl in [128usize, 256, 512, 1024, 2048] {
                let req = ExecRequest::new(&kernel, &family, &env).vl_bits(vl);
                let fused = engine
                    .execute(&req)
                    .unwrap_or_else(|e| panic!("{} @VL={vl}: {e}", spec.name));
                let unfused = engine
                    .execute(&req.clone().fused(false))
                    .unwrap_or_else(|e| panic!("{} @VL={vl}: {e}", spec.name));
                for (name, expected) in fused.out.arrays() {
                    arrays_match(expected, unfused.out.array(name).unwrap(), 0.0).unwrap_or_else(
                        |e| {
                            panic!(
                                "{} [{} @VL={vl}]: array {name} diverged: {e}",
                                spec.name, family.name
                            )
                        },
                    );
                }
                assert_eq!(
                    fused.stats, unfused.stats,
                    "{} [{} @VL={vl}]: cycles/insts diverged",
                    spec.name, family.name
                );
            }
        }
    }
}

/// Re-specializing a fused decode to another VL must be exactly what a
/// fresh fused decode at that VL produces — the fusion decisions are
/// re-validated per VL through `respecialize` and must never drift.
#[test]
fn fused_respecialization_matches_fresh_fused_decode() {
    let engine = Engine::new();
    let cfg = CompileConfig::default();
    for spec in suite() {
        let kernel = spec.kernel();
        let family = sve();
        let Ok(compiled) = engine.compile(&kernel, Flow::SplitVectorOpt, &family, &cfg) else {
            continue;
        };
        for vl in [128usize, 512, 2048] {
            let exec = family.at_vl(vl);
            let fresh = DecodedProgram::decode(&compiled.jit.code, &exec).unwrap();
            let respec = compiled
                .jit
                .decoded
                .respecialize(&compiled.jit.code, &exec)
                .unwrap();
            assert_eq!(respec.fusion_stats(), fresh.fusion_stats(), "{}", spec.name);
            assert_eq!(
                vapor_targets::disasm_decoded(&respec),
                vapor_targets::disasm_decoded(&fresh),
                "{} @VL={vl}",
                spec.name
            );
            for (a, b) in respec.steps().iter().zip(fresh.steps()) {
                assert_eq!((a.cost, a.lanes, a.arity), (b.cost, b.lanes, b.arity));
            }
        }
    }
}

//! Register-file sizing tests: the target-sized (inline/heap) VM
//! register file must be observationally identical to the seed-style
//! max-width file on every suite kernel, and real VLA compilations must
//! actually hit the predicated fast-dispatch kernels.

use vapor_core::{
    arrays_match, run, run_specialized, run_specialized_wide, run_wide, AllocPolicy, CompileConfig,
    Engine, Flow,
};
use vapor_kernels::{suite, Scale};
use vapor_targets::{avx, neon64, rvv, sse, sve, DStep};

/// Property-style differential check: for every suite kernel on every
/// fixed-width target, the target-sized register file and the max-sized
/// (2048-bit, heap-backed) register file produce bit-identical machine
/// state — same arrays, same cycles, same instruction counts.
#[test]
fn sized_and_max_register_files_agree_on_every_suite_kernel() {
    let engine = Engine::new();
    let cfg = CompileConfig::default();
    for spec in suite() {
        let kernel = spec.kernel();
        let env = spec.env(Scale::Test);
        for target in [sse(), neon64(), avx()] {
            for flow in [Flow::SplitVectorOpt, Flow::NativeVector] {
                let compiled = engine.compile(&kernel, flow, &target, &cfg).unwrap();
                let sized = run(&target, &compiled, &env, AllocPolicy::Aligned)
                    .unwrap_or_else(|e| panic!("{} [{flow} on {}]: {e}", spec.name, target.name));
                let wide = run_wide(&target, &compiled, &env, AllocPolicy::Aligned)
                    .unwrap_or_else(|e| panic!("{} [{flow} on {}]: {e}", spec.name, target.name));
                for (name, expected) in sized.out.arrays() {
                    // Bit-exact: tolerance 0.
                    arrays_match(expected, wide.out.array(name).unwrap(), 0.0).unwrap_or_else(
                        |e| {
                            panic!(
                                "{} [{flow} on {}]: array {name} diverged: {e}",
                                spec.name, target.name
                            )
                        },
                    );
                }
                assert_eq!(
                    sized.stats, wide.stats,
                    "{} [{flow} on {}]: stats diverged",
                    spec.name, target.name
                );
            }
        }
    }
}

/// The same differential on the runtime-VL families, at the inline
/// boundary (128/256 bits), just past it (512), and at the maximum
/// (2048): narrow specializations use inline registers, wide ones heap —
/// both must match the forced max-width file exactly.
#[test]
fn sized_and_max_register_files_agree_at_every_runtime_vl() {
    let engine = Engine::new();
    let cfg = CompileConfig::default();
    for spec in suite() {
        let kernel = spec.kernel();
        let env = spec.env(Scale::Test);
        for family in [sve(), rvv()] {
            for vl in [128usize, 256, 512, 2048] {
                let (compiled, prog) = engine
                    .specialize(&kernel, Flow::SplitVectorOpt, &family, &cfg, vl)
                    .unwrap_or_else(|e| panic!("{} @VL={vl}: {e}", spec.name));
                let exec = family.at_vl(vl);
                let sized = run_specialized(&exec, &compiled, &prog, &env, AllocPolicy::Aligned)
                    .unwrap_or_else(|e| panic!("{} @VL={vl}: {e}", spec.name));
                let wide =
                    run_specialized_wide(&exec, &compiled, &prog, &env, AllocPolicy::Aligned)
                        .unwrap_or_else(|e| panic!("{} @VL={vl}: {e}", spec.name));
                for (name, expected) in sized.out.arrays() {
                    arrays_match(expected, wide.out.array(name).unwrap(), 0.0).unwrap_or_else(
                        |e| {
                            panic!(
                                "{} [{} @VL={vl}]: array {name} diverged: {e}",
                                spec.name, family.name
                            )
                        },
                    );
                }
                assert_eq!(
                    sized.stats, wide.stats,
                    "{} [{} @VL={vl}]: stats diverged",
                    spec.name, family.name
                );
            }
        }
    }
}

/// Real VLA compilations must hit the new predicated fast-dispatch
/// kernels: every vectorized suite kernel that emits `VBinVl` decodes it
/// to `DStep::VBinVlFast`, never to the generic `Op` fallback.
#[test]
fn vla_compilations_hit_the_predicated_fast_kernels() {
    let engine = Engine::new();
    let cfg = CompileConfig::default();
    let mut fast_bins = 0usize;
    let mut fast_uns = 0usize;
    for spec in suite() {
        let kernel = spec.kernel();
        for family in [sve(), rvv()] {
            let Ok((_, prog)) =
                engine.specialize(&kernel, Flow::SplitVectorOpt, &family, &cfg, 512)
            else {
                continue;
            };
            for d in prog.steps() {
                match &d.step {
                    DStep::VBinVlFast { .. } => fast_bins += 1,
                    DStep::VUnVlFast { .. } => fast_uns += 1,
                    DStep::Op(inst) => {
                        assert!(
                            !matches!(
                                inst,
                                vapor_targets::MInst::VBinVl { .. }
                                    | vapor_targets::MInst::VUnVl { .. }
                            ),
                            "{}: predicated op fell back to the generic path: {}",
                            spec.name,
                            vapor_targets::disasm_inst(inst)
                        );
                    }
                    _ => {}
                }
            }
        }
    }
    assert!(
        fast_bins > 0,
        "the suite must exercise VBinVlFast at least once"
    );
    // VUnVl (neg/abs/sqrt lanes) is rarer; don't require it from the
    // suite, but record that we looked.
    let _ = fast_uns;
}

//! Register-file sizing tests: the target-sized (inline/heap) VM
//! register file must be observationally identical to the seed-style
//! max-width file on every suite kernel, and real VLA compilations must
//! actually hit the predicated fast-dispatch kernels.

use vapor_core::{arrays_match, CompileConfig, Engine, ExecRequest, Flow};
use vapor_kernels::{suite, Scale};
use vapor_targets::{avx, neon64, rvv, sse, sve, DStep};

/// Property-style differential check: for every suite kernel on every
/// fixed-width target, the target-sized register file and the max-sized
/// (2048-bit, heap-backed) register file produce bit-identical machine
/// state — same arrays, same cycles, same instruction counts.
#[test]
fn sized_and_max_register_files_agree_on_every_suite_kernel() {
    let engine = Engine::new();
    for spec in suite() {
        let kernel = spec.kernel();
        let env = spec.env(Scale::Test);
        for target in [sse(), neon64(), avx()] {
            for flow in [Flow::SplitVectorOpt, Flow::NativeVector] {
                let req = ExecRequest::new(&kernel, &target, &env).flow(flow);
                let sized = engine
                    .execute(&req)
                    .unwrap_or_else(|e| panic!("{} [{flow} on {}]: {e}", spec.name, target.name));
                let wide = engine
                    .execute(&req.clone().wide_registers(true))
                    .unwrap_or_else(|e| panic!("{} [{flow} on {}]: {e}", spec.name, target.name));
                for (name, expected) in sized.out.arrays() {
                    // Bit-exact: tolerance 0.
                    arrays_match(expected, wide.out.array(name).unwrap(), 0.0).unwrap_or_else(
                        |e| {
                            panic!(
                                "{} [{flow} on {}]: array {name} diverged: {e}",
                                spec.name, target.name
                            )
                        },
                    );
                }
                assert_eq!(
                    sized.stats, wide.stats,
                    "{} [{flow} on {}]: stats diverged",
                    spec.name, target.name
                );
            }
        }
    }
}

/// The same differential on the runtime-VL families, at the inline
/// boundary (128/256 bits), just past it (512), and at the maximum
/// (2048): narrow specializations use inline registers, wide ones heap —
/// both must match the forced max-width file exactly.
#[test]
fn sized_and_max_register_files_agree_at_every_runtime_vl() {
    let engine = Engine::new();
    for spec in suite() {
        let kernel = spec.kernel();
        let env = spec.env(Scale::Test);
        for family in [sve(), rvv()] {
            for vl in [128usize, 256, 512, 2048] {
                let req = ExecRequest::new(&kernel, &family, &env).vl_bits(vl);
                let sized = engine
                    .execute(&req)
                    .unwrap_or_else(|e| panic!("{} @VL={vl}: {e}", spec.name));
                let wide = engine
                    .execute(&req.clone().wide_registers(true))
                    .unwrap_or_else(|e| panic!("{} @VL={vl}: {e}", spec.name));
                for (name, expected) in sized.out.arrays() {
                    arrays_match(expected, wide.out.array(name).unwrap(), 0.0).unwrap_or_else(
                        |e| {
                            panic!(
                                "{} [{} @VL={vl}]: array {name} diverged: {e}",
                                spec.name, family.name
                            )
                        },
                    );
                }
                assert_eq!(
                    sized.stats, wide.stats,
                    "{} [{} @VL={vl}]: stats diverged",
                    spec.name, family.name
                );
            }
        }
    }
}

/// Real VLA compilations must hit the new predicated fast-dispatch
/// kernels: every vectorized suite kernel that emits `VBinVl` decodes it
/// to `DStep::VBinVlFast`, never to the generic `Op` fallback.
#[test]
fn vla_compilations_hit_the_predicated_fast_kernels() {
    let engine = Engine::new();
    let cfg = CompileConfig::default();
    let mut fast_bins = 0usize;
    let mut fast_uns = 0usize;
    for spec in suite() {
        let kernel = spec.kernel();
        for family in [sve(), rvv()] {
            let Ok((_, prog)) =
                engine.specialize(&kernel, Flow::SplitVectorOpt, &family, &cfg, 512)
            else {
                continue;
            };
            for d in prog.steps() {
                match &d.step {
                    DStep::VBinVlFast { .. } => fast_bins += 1,
                    // A predicated op swallowed by the LoadVl→VBinVl→
                    // StoreVl superinstruction still runs the fast lane
                    // kernel.
                    DStep::FusedLoadBinStoreVl(_) => fast_bins += 1,
                    DStep::VUnVlFast { .. } => fast_uns += 1,
                    DStep::Op(inst) => {
                        assert!(
                            !matches!(
                                inst,
                                vapor_targets::MInst::VBinVl { .. }
                                    | vapor_targets::MInst::VUnVl { .. }
                            ),
                            "{}: predicated op fell back to the generic path: {}",
                            spec.name,
                            vapor_targets::disasm_inst(inst)
                        );
                    }
                    _ => {}
                }
            }
        }
    }
    assert!(
        fast_bins > 0,
        "the suite must exercise VBinVlFast at least once"
    );
    // VUnVl (neg/abs/sqrt lanes) is rarer; don't require it from the
    // suite, but record that we looked.
    let _ = fast_uns;
}

/// Per-op coverage of the PR 5 fast-dispatch steps (`SplatFast`,
/// `VShiftImmFast`/`VShiftRegFast`, `SpillLdFast`/`SpillStFast`,
/// `VReduceFast`) at the representation-boundary register widths: 16
/// and 32 bytes (inline), 33 (first heap width) and 256 (the VLA
/// maximum). Decoded dispatch must match the seed interpreter bit for
/// bit at every width.
#[test]
fn new_fast_steps_match_the_baseline_at_boundary_widths() {
    use vapor_ir::ScalarTy;
    use vapor_ir::Value;
    use vapor_targets::{
        AddrMode, DStep as D, DecodedProgram, MCode, MInst, Machine, MemAlign, ReduceOp, SReg,
        ShiftSrc, VReg,
    };

    let code = MCode {
        insts: vec![
            MInst::Splat {
                ty: ScalarTy::I32,
                dst: VReg(0),
                src: SReg(1),
            },
            MInst::LoadV {
                dst: VReg(1),
                addr: AddrMode::base_disp(SReg(0), 0),
                align: MemAlign::Unaligned,
            },
            MInst::VShift {
                left: true,
                ty: ScalarTy::I32,
                dst: VReg(2),
                a: VReg(1),
                amt: ShiftSrc::Imm(3),
            },
            MInst::VShift {
                left: false,
                ty: ScalarTy::I32,
                dst: VReg(3),
                a: VReg(1),
                amt: ShiftSrc::Reg(SReg(2)),
            },
            MInst::VShift {
                left: false,
                ty: ScalarTy::I32,
                dst: VReg(4),
                a: VReg(1),
                amt: ShiftSrc::PerLane(VReg(0)),
            },
            MInst::SpillSt {
                src: SReg(1),
                slot: 0,
            },
            MInst::MovS {
                dst: SReg(1),
                src: SReg(2),
            },
            MInst::SpillLd {
                dst: SReg(3),
                slot: 0,
            },
            MInst::VReduce {
                op: ReduceOp::Plus,
                ty: ScalarTy::I32,
                dst: SReg(4),
                src: VReg(2),
            },
            MInst::VReduce {
                op: ReduceOp::Max,
                ty: ScalarTy::I32,
                dst: SReg(5),
                src: VReg(3),
            },
            MInst::VReduce {
                op: ReduceOp::Min,
                ty: ScalarTy::I32,
                dst: SReg(6),
                src: VReg(4),
            },
        ],
        n_sregs: 7,
        n_vregs: 5,
        note: String::new(),
    };

    // Boundary widths: fixed 16/32-byte targets, a synthetic 33-byte
    // machine (first heap-backed width) and the 2048-bit VLA maximum.
    let mut odd = vapor_targets::sve().at_vl(512);
    odd.vs = 33;
    let targets = [
        ("sse/16", vapor_targets::sse()),
        ("avx/32", vapor_targets::avx()),
        ("vs=33", odd),
        ("sve/256", vapor_targets::sve().at_vl(2048)),
    ];
    for (tag, t) in &targets {
        let prog = DecodedProgram::decode(&code, t).unwrap();
        // Every instruction must take its specialized step — none may
        // fall back to the generic Op path.
        for d in prog.steps() {
            assert!(
                !matches!(d.step, D::Op(_)),
                "{tag}: generic fallback for {}",
                vapor_targets::disasm_step(&d.step)
            );
        }
        assert!(prog
            .steps()
            .iter()
            .any(|d| matches!(d.step, D::SplatFast { .. })));
        assert!(prog
            .steps()
            .iter()
            .any(|d| matches!(d.step, D::VShiftImmFast { .. })));
        assert!(prog
            .steps()
            .iter()
            .any(|d| matches!(d.step, D::VShiftRegFast { .. })));
        assert!(prog
            .steps()
            .iter()
            .any(|d| matches!(d.step, D::SpillLdFast { .. })));
        assert!(prog
            .steps()
            .iter()
            .any(|d| matches!(d.step, D::SpillStFast { .. })));
        assert!(prog
            .steps()
            .iter()
            .any(|d| matches!(d.step, D::VReduceFast { .. })));
        // The per-lane shift reuses the VBin lane kernels.
        assert!(prog
            .steps()
            .iter()
            .any(|d| matches!(d.step, D::VBinFast { .. })));

        let run_one = |decoded: bool| {
            let mut m = Machine::new(t, 8192);
            let base = m.mem.alloc(256, 256);
            for k in 0..64u64 {
                m.mem
                    .write(ScalarTy::I32, base + 4 * k, Value::Int(k as i64 - 7));
            }
            m.set_sreg(SReg(0), Value::Int(base as i64));
            m.set_sreg(SReg(1), Value::Int(2));
            m.set_sreg(SReg(2), Value::Int(1));
            let stats = if decoded {
                m.run_decoded(&prog).unwrap()
            } else {
                m.run(&code).unwrap()
            };
            let regs: Vec<Value> = (0..7).map(|r| m.sreg(SReg(r))).collect();
            (stats, regs)
        };
        let (fast_stats, fast_regs) = run_one(true);
        let (base_stats, base_regs) = run_one(false);
        assert_eq!(fast_regs, base_regs, "{tag}: registers diverged");
        assert_eq!(fast_stats, base_stats, "{tag}: stats diverged");
    }
}

//! Targeted assertions of the paper's qualitative claims — the "shape"
//! of the evaluation that must survive the simulation substitution.

use std::sync::OnceLock;

use vapor_core::{CompileConfig, Engine, ExecRequest, Flow};
use vapor_jit::Pipeline;
use vapor_kernels::{find, Scale};
use vapor_targets::{altivec, neon64, scalar_only, sse};

/// One shared engine across every claim test: kernels recur between
/// claims, so later tests run on cache hits.
fn engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(Engine::new)
}

fn full_cycles(name: &str, flow: Flow, target: &vapor_targets::TargetDesc) -> u64 {
    let spec = find(name).unwrap();
    let kernel = spec.kernel();
    let env = spec.env(Scale::Full);
    engine()
        .execute(&ExecRequest::new(&kernel, target, &env).flow(flow))
        .unwrap()
        .stats
        .cycles
}

/// §V-B: "In mix-streams, the split-vectorized version is particularly
/// improved by the versioning … compared to the native compiler which
/// generates a misaligned version only."
#[test]
fn mix_streams_split_beats_native_on_sse() {
    let split = full_cycles("mix_streams_s16", Flow::SplitVectorOpt, &sse());
    let native = full_cycles("mix_streams_s16", Flow::NativeVector, &sse());
    let ratio = split as f64 / native as f64;
    assert!(
        ratio < 0.9,
        "expected split << native via alignment versioning, got {ratio:.2}"
    );
}

/// §V-B / Figure 6c: NEON's immature backend expands `widen_mult` and the
/// conversions via library calls; `dissolve` and `dct` degrade while the
/// native compiler keeps those loops scalar.
#[test]
fn neon_library_fallback_degrades_dissolve_and_dct() {
    for name in ["dissolve_s8", "dct_s32fp"] {
        let split = full_cycles(name, Flow::SplitVectorOpt, &neon64());
        let native = full_cycles(name, Flow::NativeVector, &neon64());
        let ratio = split as f64 / native as f64;
        assert!(
            ratio > 1.3,
            "{name}: expected library-fallback slowdown, got {ratio:.2}"
        );

        // The helper calls are really there.
        let spec = find(name).unwrap();
        let c = engine()
            .compile(
                &spec.kernel(),
                Flow::SplitVectorOpt,
                &neon64(),
                &CompileConfig::default(),
            )
            .unwrap();
        assert!(
            c.jit.stats.helper_calls > 0,
            "{name}: no helper calls emitted"
        );
    }
}

/// §V-B: "dscal dp and saxpy dp are scalarized on AltiVec as it lacks
/// support for doubles. Scalarization hardly degrades performance."
#[test]
fn doubles_scalarize_on_altivec_with_small_cost() {
    for name in ["dscal_dp", "saxpy_dp"] {
        let split = full_cycles(name, Flow::SplitVectorOpt, &altivec());
        let native = full_cycles(name, Flow::NativeVector, &altivec());
        let ratio = split as f64 / native as f64;
        assert!(
            (0.9..1.3).contains(&ratio),
            "{name}: scalarization should hardly degrade performance, got {ratio:.2}"
        );
        // And it really is scalar: same flow on AltiVec vs vector on SSE.
        let sse_cycles = full_cycles(name, Flow::SplitVectorOpt, &sse());
        assert!(
            split as f64 > 1.5 * sse_cycles as f64,
            "{name}: AltiVec result should be scalar-speed"
        );
    }
}

/// §III-C(d): scalarizing the vectorized bytecode for a non-SIMD target
/// is "lightweight, resulting in high-quality scalar code, without
/// introducing new overheads" — the split flow on the scalar-only target
/// stays close to natively compiled scalar code.
#[test]
fn scalarization_overhead_is_low() {
    let t = scalar_only();
    for name in [
        "dscal_fp",
        "saxpy_fp",
        "dissolve_fp",
        "sfir_fp",
        "convolve_s32",
    ] {
        let split = full_cycles(name, Flow::SplitVectorOpt, &t);
        let native = full_cycles(name, Flow::NativeScalar, &t);
        let overhead = split as f64 / native as f64;
        assert!(
            overhead < 1.25,
            "{name}: scalarization overhead {overhead:.2} exceeds 25%"
        );
    }
}

/// §V-A: the MMM alignment test "is not resolved at compile time and
/// executed in each iteration of the outer loop" under the naive JIT —
/// visible as runtime guards in the naive compile and a worse normalized
/// impact than under the optimizing pipeline.
#[test]
fn mmm_guard_resolution_differs_between_pipelines() {
    let spec = find("mmm_fp").unwrap();
    let kernel = spec.kernel();
    let cfg = CompileConfig::default();
    let naive = engine()
        .compile(&kernel, Flow::SplitVectorNaive, &altivec(), &cfg)
        .unwrap();
    let opt = engine()
        .compile(&kernel, Flow::SplitVectorOpt, &altivec(), &cfg)
        .unwrap();
    assert!(
        naive.jit.stats.guards_runtime > 0,
        "naive JIT must emit runtime guards"
    );
    // The naive JIT folds fewer guards than it leaves at runtime checks
    // relative to the optimizing pipeline, which precomputes conditions
    // at entry (same counts, hoisted) — observable through cycles:
    let env = spec.env(Scale::Full);
    let target = altivec();
    let req = ExecRequest::new(&kernel, &target, &env);
    let rn = engine()
        .execute(&req.clone().flow(Flow::SplitVectorNaive))
        .unwrap()
        .stats
        .cycles;
    let ro = engine()
        .execute(&req.flow(Flow::SplitVectorOpt))
        .unwrap()
        .stats
        .cycles;
    assert!(
        rn > ro,
        "naive in-loop guard evaluation must cost cycles: {rn} vs {ro}"
    );
    assert!(naive.jit.stats.insts > opt.jit.stats.insts);
    let _ = Pipeline::NaiveJit;
}

/// §V-A(c): JIT compilation times are "in the microsecond range".
#[test]
fn online_compile_times_are_microseconds() {
    let spec = find("saxpy_fp").unwrap();
    let kernel = spec.kernel();
    // Uncached: this asserts on the real online stage's wall time.
    let c = engine()
        .compile_uncached(
            &kernel,
            Flow::SplitVectorOpt,
            &sse(),
            &CompileConfig::default(),
        )
        .unwrap();
    assert!(
        c.online_time.as_millis() < 50,
        "online stage took {:?} — far beyond the µs range",
        c.online_time
    );
}

/// §III-A: "the split layer should facilitate a JIT vectorization whose
/// complexity is linear in the code size" — compile time scales roughly
/// with bytecode size across the suite (no quadratic blowups).
#[test]
fn online_stage_is_roughly_linear_in_bytecode_size() {
    let cfg = CompileConfig::default();
    let t = sse();
    let mut points = Vec::new();
    for spec in vapor_kernels::suite() {
        let kernel = spec.kernel();
        let c = engine()
            .compile(&kernel, Flow::SplitVectorOpt, &t, &cfg)
            .unwrap();
        points.push((c.bytecode_bytes as f64, c.jit.stats.insts as f64));
    }
    // Emitted machine instructions per bytecode byte stay within a small
    // constant band across two orders of magnitude of kernel size.
    let ratios: Vec<f64> = points.iter().map(|(b, i)| i / b).collect();
    let max = ratios.iter().cloned().fold(0.0, f64::max);
    let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        max / min < 12.0,
        "instruction/bytecode ratio varies too much: {min:.3}..{max:.3}"
    );
}

//! Golden snapshots of the vectorization *plan*: per-loop verdicts,
//! typed rejection reasons, and — where Allen–Kennedy distribution ran —
//! the SCC partition with a per-component verdict. A silent change in
//! the planner's decisions (a loop flipping to scalar, an SCC merging,
//! a reason recategorizing) fails these tests instead of only showing up
//! as a bench regression.
//!
//! Snapshots live under `tests/golden/plan_*.txt`; regenerate after an
//! *intentional* planner change with
//! `UPDATE_GOLDEN=1 cargo test --test plan_golden`.

use vapor_frontend::parse_kernel;
use vapor_vectorizer::{vectorize, LoopReport, VectorizeOptions};

/// Render a kernel's reports as a stable, human-diffable plan listing.
fn render(name: &str, reports: &[LoopReport]) -> String {
    let mut out = format!("plan {name}\n");
    for r in reports {
        let verdict = if r.vectorized { "VECTOR" } else { "scalar" };
        out.push_str(&format!("  {}: {verdict}", r.description));
        if !r.features.is_empty() {
            out.push_str(&format!(" features={:?}", r.features));
        }
        if let Some(rej) = &r.reason {
            out.push_str(&format!(" -- {rej}"));
        }
        out.push('\n');
        for p in &r.parts {
            let pv = if p.vectorized { "VECTOR" } else { "scalar" };
            out.push_str(&format!("    scc stmts={:?}: {pv}", p.stmts));
            if let Some(rej) = &p.reason {
                out.push_str(&format!(" -- {rej}"));
            }
            out.push('\n');
        }
    }
    out
}

fn check_golden(tag: &str, text: &str) {
    let path = format!(
        "{}/tests/golden/{tag}.txt",
        env!("CARGO_MANIFEST_DIR").trim_end_matches('/')
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, text).unwrap_or_else(|e| panic!("write {path}: {e}"));
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {path}: {e} (run with UPDATE_GOLDEN=1 to create)"));
    assert_eq!(
        text, want,
        "plan of {tag} drifted from the golden snapshot; \
         if the change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// The three historical floor kernels: `lu`/`ludcmp` now plan vector
/// inner loops; `seidel` stays scalar but its plan must show the single
/// cyclic SCC the distribution pass found.
#[test]
fn solver_plans_match_goldens() {
    for name in ["lu_fp", "ludcmp_fp", "seidel_fp"] {
        let spec = vapor_kernels::find(name).unwrap();
        let result = vectorize(&spec.kernel(), &VectorizeOptions::default());
        check_golden(&format!("plan_{name}"), &render(name, &result.reports));
    }
}

/// Distribution demo: a loop whose statements split into two acyclic
/// SCCs (both vectorize, as separate stripmined loops in dependence
/// order), and one whose recurrence half stays behind as a scalar
/// residual loop while the acyclic half vectorizes.
#[test]
fn distribution_plans_match_goldens() {
    let split = parse_kernel(
        "kernel dist_split(long n, float a[], float b[], float c[]) {
           for (long i = 1; i < n; i++) {
             a[i] = b[i] + 1.5;
             c[i] = a[i - 1] * 2.5;
           }
         }",
    )
    .unwrap();
    let result = vectorize(&split, &VectorizeOptions::default());
    check_golden("plan_dist_split", &render("dist_split", &result.reports));

    let residual = parse_kernel(
        "kernel dist_residual(long n, float a[], float b[], float c[], float d[]) {
           for (long i = 1; i < n; i++) {
             b[i] = a[i] + c[i];
             d[i] = d[i - 1] + b[i];
           }
         }",
    )
    .unwrap();
    let result = vectorize(&residual, &VectorizeOptions::default());
    check_golden("plan_dist_residual", &render("dist_residual", &result.reports));
}

//! Closure-threaded tier differential tests: every suite kernel on
//! every target runs once through the decoded dispatch (the oracle) and
//! once through the threaded tier — machine state, cycles and
//! instruction counts must be bit-identical. The threaded tier flattens
//! the register file into an arena, streams affine addresses, and
//! charges fuel per region, but on non-trapping executions none of that
//! may be observable: *any* difference is a threading bug.

use vapor_core::{arrays_match, AllocPolicy, Engine, ExecRequest, Flow, Tier};
use vapor_kernels::{suite, Scale};
use vapor_targets::{avx, neon64, rvv, sse, sve};

/// Threaded vs decoded on every fixed-width target, both online flows
/// the fusion harness covers.
#[test]
fn threaded_and_decoded_dispatch_agree_on_every_suite_kernel() {
    let engine = Engine::new();
    for spec in suite() {
        let kernel = spec.kernel();
        let env = spec.env(Scale::Test);
        for target in [sse(), neon64(), avx()] {
            for flow in [Flow::SplitVectorOpt, Flow::NativeVector] {
                let req = ExecRequest::new(&kernel, &target, &env).flow(flow);
                let decoded = engine
                    .execute(&req)
                    .unwrap_or_else(|e| panic!("{} [{flow} on {}]: {e}", spec.name, target.name));
                let threaded = engine
                    .execute(&req.clone().tier(Tier::Threaded))
                    .unwrap_or_else(|e| panic!("{} [{flow} on {}]: {e}", spec.name, target.name));
                for (name, expected) in decoded.out.arrays() {
                    // Bit-exact: tolerance 0.
                    arrays_match(expected, threaded.out.array(name).unwrap(), 0.0).unwrap_or_else(
                        |e| {
                            panic!(
                                "{} [{flow} on {}]: array {name} diverged: {e}",
                                spec.name, target.name
                            )
                        },
                    );
                }
                assert_eq!(
                    decoded.stats, threaded.stats,
                    "{} [{flow} on {}]: cycles/insts diverged",
                    spec.name, target.name
                );
            }
        }
    }
}

/// The same differential on the runtime-VL families across the full VL
/// range: both sides go through the engine (`specialize` feeds the
/// per-VL decode LRU, `thread` the threaded LRU) and execute at the
/// concrete width.
#[test]
fn threaded_and_decoded_dispatch_agree_at_every_runtime_vl() {
    let engine = Engine::new();
    for spec in suite() {
        let kernel = spec.kernel();
        let env = spec.env(Scale::Test);
        for family in [sve(), rvv()] {
            for vl in [128usize, 256, 512, 1024, 2048] {
                let req = ExecRequest::new(&kernel, &family, &env).vl_bits(vl);
                let decoded = engine
                    .execute(&req)
                    .unwrap_or_else(|e| panic!("{} @VL={vl}: {e}", spec.name));
                let threaded = engine
                    .execute(&req.clone().tier(Tier::Threaded))
                    .unwrap_or_else(|e| panic!("{} @VL={vl}: {e}", spec.name));
                for (name, expected) in decoded.out.arrays() {
                    arrays_match(expected, threaded.out.array(name).unwrap(), 0.0).unwrap_or_else(
                        |e| {
                            panic!(
                                "{} [{} @VL={vl}]: array {name} diverged: {e}",
                                spec.name, family.name
                            )
                        },
                    );
                }
                assert_eq!(
                    decoded.stats, threaded.stats,
                    "{} [{} @VL={vl}]: cycles/insts diverged",
                    spec.name, family.name
                );
            }
        }
    }
}

/// Misaligned bases exercise the unaligned/guard paths of the threaded
/// address streams: loads and stores must stride to exactly the same
/// addresses the decoded dispatch recomputes, even when alignment
/// guards steer the code down fallback paths.
#[test]
fn threaded_dispatch_agrees_under_misaligned_bases() {
    let engine = Engine::new();
    for spec in suite() {
        let kernel = spec.kernel();
        let env = spec.env(Scale::Test);
        let target = sse();
        for mis in [4usize, 8] {
            let req = ExecRequest::new(&kernel, &target, &env).policy(AllocPolicy::Misaligned(mis));
            let decoded = engine
                .execute(&req)
                .unwrap_or_else(|e| panic!("{} (mis={mis}): {e}", spec.name));
            let threaded = engine
                .execute(&req.clone().tier(Tier::Threaded))
                .unwrap_or_else(|e| panic!("{} (mis={mis}): {e}", spec.name));
            for (name, expected) in decoded.out.arrays() {
                arrays_match(expected, threaded.out.array(name).unwrap(), 0.0).unwrap_or_else(
                    |e| panic!("{} (mis={mis}): array {name} diverged: {e}", spec.name),
                );
            }
            assert_eq!(
                decoded.stats, threaded.stats,
                "{} (mis={mis}): cycles/insts diverged",
                spec.name
            );
        }
    }
}

//! Service-layer integration tests: the engine under concurrent
//! multi-tenant load (stats consistency, in-flight dedup, arena
//! pooling), the bounded sharded cache, and the persistent artifact
//! tier (round-trip differential, corruption rejection) — plus the
//! compatibility contract of the deprecated `run_*` shims against the
//! unified [`vapor_core::ExecRequest`] API.

use std::collections::HashSet;
use std::path::PathBuf;

use vapor_core::{
    arrays_match, run, run_baseline, run_threaded, run_unfused, run_wide, AllocPolicy,
    CompileConfig, Engine, ExecRequest, Flow, Tier,
};
use vapor_kernels::{suite, Scale};
use vapor_targets::{sse, sve};

/// A unique scratch directory under the system temp dir. The tests
/// clean up after themselves; a leftover directory from a killed run is
/// ignored (removed on entry).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vapor-service-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Many threads hammer one engine with a mixed request plan. The
/// engine's counters must reconcile exactly: every request is one
/// compile-cache lookup, every distinct (kernel, target) tuple compiles
/// exactly once no matter how many threads race it (in-flight dedup
/// must neither lose nor duplicate a compile), and every request takes
/// exactly one arena from the pool.
#[test]
fn concurrent_hammer_keeps_stats_exact_and_dedups_inflight_compiles() {
    let threads = 8usize;
    let per_thread = 40usize;
    let specs: Vec<_> = suite().into_iter().take(6).collect();
    let kernels: Vec<_> = specs.iter().map(|s| s.kernel()).collect();
    let envs: Vec<_> = specs.iter().map(|s| s.env(Scale::Test)).collect();
    let sse_t = sse();
    let sve_t = sve();

    let engine = Engine::new();
    let mut distinct: HashSet<(usize, bool)> = HashSet::new();
    for tid in 0..threads {
        for i in 0..per_thread {
            distinct.insert(((i + tid) % specs.len(), i % 3 == 0));
        }
    }
    std::thread::scope(|scope| {
        for tid in 0..threads {
            let engine = &engine;
            let kernels = &kernels;
            let envs = &envs;
            let (sse_t, sve_t) = (&sse_t, &sve_t);
            scope.spawn(move || {
                for i in 0..per_thread {
                    let spec = (i + tid) % kernels.len();
                    let vla = i % 3 == 0;
                    let target = if vla { sve_t } else { sse_t };
                    let mut req = ExecRequest::new(&kernels[spec], target, &envs[spec]);
                    if vla {
                        req = req.vl_bits(if i % 2 == 0 { 256 } else { 1024 });
                    }
                    if i % 5 == 4 {
                        req = req.tier(Tier::Threaded);
                    }
                    engine.execute(&req).unwrap();
                }
            });
        }
    });
    let s = engine.stats();
    let issued = (threads * per_thread) as u64;
    assert_eq!(s.hits + s.misses, issued, "one cache lookup per request");
    assert_eq!(
        s.misses,
        distinct.len() as u64,
        "one compile per distinct tuple — in-flight dedup lost or duplicated work"
    );
    assert_eq!(s.entries, distinct.len());
    assert_eq!(
        s.pool_reuses + s.pool_allocs,
        issued,
        "one arena per request"
    );
    assert!(
        s.pool_reuses > 0,
        "a hammer this long must recycle pooled arenas"
    );
}

/// The compile cache is bounded per shard: a working set larger than
/// the configured capacity must evict (counted) instead of growing
/// without bound.
#[test]
fn compile_cache_stays_within_its_configured_bound() {
    let engine = Engine::builder()
        .shards(2)
        .compile_cache_capacity(4)
        .build()
        .unwrap();
    let cfg = CompileConfig::default();
    let target = sse();
    let specs: Vec<_> = suite().into_iter().take(12).collect();
    for spec in &specs {
        engine
            .compile(&spec.kernel(), Flow::SplitVectorOpt, &target, &cfg)
            .unwrap();
    }
    let s = engine.stats();
    // Per-shard capacity is ceil(4/2) = 2, so at most 4 entries total.
    assert!(s.entries <= 4, "cache grew past its bound: {}", s.entries);
    assert_eq!(s.evictions, (specs.len() - s.entries) as u64);
    assert_eq!(s.shards, 2);
}

/// Round-trip differential over the suite: artifacts written by one
/// engine and decoded by a second (fresh) engine on the same store must
/// produce bit-identical machine state and `vm_cycles` — the on-disk
/// bytecode tier is not allowed to perturb execution in any observable
/// way.
#[test]
fn artifact_round_trip_executes_bit_identically_across_engines() {
    let dir = scratch("roundtrip");
    let writer = Engine::builder().artifact_dir(&dir).build().unwrap();
    let reader = Engine::builder().artifact_dir(&dir).build().unwrap();
    let target = sse();
    for spec in suite() {
        let kernel = spec.kernel();
        let env = spec.env(Scale::Test);
        let req = ExecRequest::new(&kernel, &target, &env);
        let fresh = writer.execute(&req).unwrap();
        let warm = reader.execute(&req).unwrap();
        for (name, expected) in fresh.out.arrays() {
            // Bit-exact: tolerance 0.
            arrays_match(expected, warm.out.array(name).unwrap(), 0.0)
                .unwrap_or_else(|e| panic!("{}: array {name} diverged: {e}", spec.name));
        }
        assert_eq!(
            fresh.stats, warm.stats,
            "{}: artifact-decoded compile diverged in cycles/insts",
            spec.name
        );
    }
    let ws = writer.stats();
    let rs = reader.stats();
    assert_eq!(ws.artifact_writes, 32, "one artifact per suite kernel");
    assert_eq!(
        rs.artifact_hits, 32,
        "the second engine must serve every compile from disk"
    );
    assert_eq!(rs.artifact_rejects, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corrupted and truncated artifacts must be rejected (counted), never
/// trusted — and the engine must transparently recompile from source
/// and heal the store with a fresh artifact.
#[test]
fn corrupted_and_truncated_artifacts_are_rejected_and_healed() {
    let dir = scratch("corrupt");
    let spec = &suite()[0];
    let kernel = spec.kernel();
    let env = spec.env(Scale::Test);
    let target = sse();
    let req = ExecRequest::new(&kernel, &target, &env);

    let writer = Engine::builder().artifact_dir(&dir).build().unwrap();
    let good = writer.execute(&req).unwrap();
    let store = writer.artifact_store().unwrap();
    let path = std::fs::read_dir(store.dir())
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "vsart"))
        .expect("the writer engine must have persisted an artifact");

    let pristine = std::fs::read(&path).unwrap();
    for (tag, mangle) in [
        ("flipped payload byte", {
            let mut b = pristine.clone();
            let mid = b.len() / 2;
            b[mid] ^= 0xff;
            b
        }),
        ("truncated file", pristine[..pristine.len() / 2].to_vec()),
        ("bad magic", {
            let mut b = pristine.clone();
            b[0] ^= 0xff;
            b
        }),
    ] {
        std::fs::write(&path, &mangle).unwrap();
        let victim = Engine::builder().artifact_dir(&dir).build().unwrap();
        let healed = victim.execute(&req).unwrap();
        let s = victim.stats();
        assert_eq!(s.artifact_rejects, 1, "{tag}: must reject, not trust");
        assert_eq!(s.artifact_hits, 0, "{tag}: a reject is not a hit");
        assert_eq!(
            healed.stats, good.stats,
            "{tag}: recompile-after-reject diverged"
        );
        assert_eq!(
            s.artifact_writes, 1,
            "{tag}: the store must be healed with a fresh artifact"
        );
        // The healed artifact is valid again: the next engine hits it.
        let verify = Engine::builder().artifact_dir(&dir).build().unwrap();
        verify.execute(&req).unwrap();
        assert_eq!(verify.stats().artifact_hits, 1, "{tag}: heal did not stick");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every deprecated `run_*` shim must behave exactly like the
/// `ExecRequest` it documents itself as — same arrays bit-for-bit, same
/// stats — so downstream code can migrate mechanically.
#[test]
fn deprecated_shims_match_the_unified_api() {
    let engine = Engine::new();
    let cfg = CompileConfig::default();
    let spec = suite().into_iter().find(|s| s.name == "saxpy_fp").unwrap();
    let kernel = spec.kernel();
    let env = spec.env(Scale::Test);
    let target = sse();
    let compiled = engine
        .compile(&kernel, Flow::SplitVectorOpt, &target, &cfg)
        .unwrap();
    let base_req = ExecRequest::new(&kernel, &target, &env);

    let pairs: Vec<(&str, vapor_core::RunResult, vapor_core::RunResult)> = vec![
        (
            "run",
            run(&target, &compiled, &env, AllocPolicy::Aligned).unwrap(),
            engine.execute(&base_req).unwrap().run_result(),
        ),
        (
            "run_wide",
            run_wide(&target, &compiled, &env, AllocPolicy::Aligned).unwrap(),
            engine
                .execute(&base_req.clone().wide_registers(true))
                .unwrap()
                .run_result(),
        ),
        (
            "run_unfused",
            run_unfused(&target, &compiled, &env, AllocPolicy::Aligned).unwrap(),
            engine
                .execute(&base_req.clone().fused(false))
                .unwrap()
                .run_result(),
        ),
        (
            "run_baseline",
            run_baseline(&target, &compiled, &env, AllocPolicy::Aligned).unwrap(),
            engine
                .execute(&base_req.clone().tier(Tier::Baseline))
                .unwrap()
                .run_result(),
        ),
        (
            "run_threaded",
            {
                let (c, prog) = engine
                    .thread(&kernel, Flow::SplitVectorOpt, &target, &cfg, target.vs * 8)
                    .unwrap();
                run_threaded(&target, &c, &prog, &env, AllocPolicy::Aligned).unwrap()
            },
            {
                engine
                    .execute(&base_req.clone().tier(Tier::Threaded))
                    .unwrap()
                    .run_result()
            },
        ),
    ];
    for (name, shim, unified) in pairs {
        assert_eq!(shim.stats, unified.stats, "{name}: stats diverged");
        for (arr, expected) in shim.out.arrays() {
            arrays_match(expected, unified.out.array(arr).unwrap(), 0.0)
                .unwrap_or_else(|e| panic!("{name}: array {arr} diverged: {e}"));
        }
    }
}

/// The builder wires every knob through to the running engine and its
/// stats, and `Engine::new()` keeps the documented defaults.
#[test]
fn builder_configuration_is_observable() {
    let engine = Engine::builder()
        .shards(3)
        .compile_cache_capacity(9)
        .arena_pool_capacity(2)
        .build()
        .unwrap();
    assert_eq!(engine.stats().shards, 3);

    let default = Engine::new();
    assert_eq!(default.stats().shards, vapor_core::DEFAULT_SHARDS);
    assert!(default.artifact_store().is_none());

    // Zero shards is clamped to one lock, never a div-by-zero.
    let one = Engine::builder().shards(0).build().unwrap();
    assert_eq!(one.stats().shards, 1);
}

/// Sequential executions must recycle the pooled arena instead of
/// reallocating: after the first request warms the pool, subsequent
/// requests are allocation-free on the arena path.
#[test]
fn arena_pool_recycles_across_sequential_requests() {
    let engine = Engine::new();
    let spec = &suite()[0];
    let kernel = spec.kernel();
    let env = spec.env(Scale::Test);
    let target = sse();
    let req = ExecRequest::new(&kernel, &target, &env);
    for _ in 0..10 {
        engine.execute(&req).unwrap();
    }
    let s = engine.stats();
    assert_eq!(s.pool_allocs, 1, "only the first request may allocate");
    assert_eq!(s.pool_reuses, 9, "every later request must reuse the arena");
}

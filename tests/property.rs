//! Property-based tests: randomly generated affine kernels must compile
//! through the split pipeline and match the reference interpreter on
//! every SIMD target, for arbitrary loop counts (tail loops included)
//! and arbitrary constant offsets (realignment included).

use proptest::prelude::*;

use vapor_core::{arrays_match, compile, reference, run, AllocPolicy, CompileConfig, Flow};
use vapor_ir::{ArrayData, BinOp, Bindings, Expr, Kernel, KernelBuilder, ScalarTy};
use vapor_targets::{altivec, neon64, sse};

#[derive(Debug, Clone)]
enum Node {
    Load(i64),
    ConstI(i64),
    Bin(BinOp, Box<Node>, Box<Node>),
    Shr(Box<Node>, u8),
}

fn node_strategy(depth: u32) -> BoxedStrategy<Node> {
    let leaf = prop_oneof![
        (0i64..4).prop_map(Node::Load),
        (-20i64..20).prop_map(Node::ConstI),
    ];
    leaf.prop_recursive(depth, 16, 2, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Min),
                    Just(BinOp::Max),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| Node::Bin(op, Box::new(a), Box::new(b))),
            (inner, 0u8..8).prop_map(|(a, k)| Node::Shr(Box::new(a), k)),
        ]
    })
    .boxed()
}

fn to_expr(n: &Node, x: vapor_ir::ArrayId, i: vapor_ir::VarId) -> Expr {
    match n {
        Node::Load(off) => Expr::load(x, Expr::bin(BinOp::Add, Expr::Var(i), Expr::Int(*off))),
        Node::ConstI(v) => Expr::Int(*v),
        Node::Bin(op, a, b) => Expr::bin(*op, to_expr(a, x, i), to_expr(b, x, i)),
        Node::Shr(a, k) => Expr::bin(BinOp::Shr, to_expr(a, x, i), Expr::Int(*k as i64)),
    }
}

fn map_kernel(value: &Node) -> Kernel {
    let mut b = KernelBuilder::new("prop_map");
    let n = b.scalar_param("n", ScalarTy::I64);
    let x = b.array_param("x", ScalarTy::I32);
    let y = b.array_param("y", ScalarTy::I32);
    let i = b.fresh_loop_var("i");
    b.for_loop(i, Expr::Int(0), Expr::Var(n), 1, |b| {
        b.store(y, Expr::Var(i), to_expr(value, x, i));
    });
    b.finish()
}

fn reduction_kernel(value: &Node) -> Kernel {
    let mut b = KernelBuilder::new("prop_reduce");
    let n = b.scalar_param("n", ScalarTy::I64);
    let x = b.array_param("x", ScalarTy::I32);
    let y = b.array_param("y", ScalarTy::I32);
    let s = b.local("s", ScalarTy::I32);
    let i = b.fresh_loop_var("i");
    b.assign(s, Expr::Int(0));
    b.for_loop(i, Expr::Int(0), Expr::Var(n), 1, |b| {
        b.assign(s, Expr::bin(BinOp::Add, Expr::Var(s), to_expr(value, x, i)));
    });
    b.store(y, Expr::Int(0), Expr::Var(s));
    b.finish()
}

fn check_kernel(kernel: &Kernel, n: usize, data: &[i64], mis: usize) {
    vapor_ir::validate(kernel).expect("generated kernel must validate");
    let mut env = Bindings::new();
    env.set_int("n", n as i64)
        .set_array("x", ArrayData::from_ints(ScalarTy::I32, data))
        .set_array("y", ArrayData::zeroed(ScalarTy::I32, n.max(1)));
    let oracle = reference(kernel, &env).expect("oracle");
    let cfg = CompileConfig::default();
    for target in [sse(), altivec(), neon64()] {
        for flow in [Flow::SplitVectorOpt, Flow::SplitVectorNaive] {
            // A JIT that owns allocation never sees misaligned bases: the
            // base_aligned guards it folds are promises about its own
            // allocator. Misaligned placement only makes sense for the
            // optimizing online flow, which emits runtime checks.
            let policy = if mis == 0 || flow == Flow::SplitVectorNaive {
                AllocPolicy::Aligned
            } else {
                AllocPolicy::Misaligned(mis)
            };
            let c = compile(kernel, flow, &target, &cfg)
                .unwrap_or_else(|e| panic!("{flow} on {}: {e}", target.name));
            let r = run(&target, &c, &env, policy)
                .unwrap_or_else(|e| panic!("{flow} on {}: {e}", target.name));
            arrays_match(oracle.array("y").unwrap(), r.out.array("y").unwrap(), 0.0)
                .unwrap_or_else(|e| {
                    panic!(
                        "{flow} on {} (n={n}, mis={mis}): {e}\nkernel:\n{}",
                        target.name,
                        vapor_ir::print_kernel(kernel)
                    )
                });
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn random_map_kernels_match_oracle(
        value in node_strategy(3),
        n in 0usize..40,
        data in prop::collection::vec(-1000i64..1000, 44),
        mis in prop_oneof![Just(0usize), Just(4), Just(12)],
    ) {
        check_kernel(&map_kernel(&value), n, &data, mis);
    }

    #[test]
    fn random_reduction_kernels_match_oracle(
        value in node_strategy(2),
        n in 0usize..40,
        data in prop::collection::vec(-1000i64..1000, 44),
    ) {
        check_kernel(&reduction_kernel(&value), n, &data, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Strided (rate-2) store pairs — the interleave path — for random
    /// coefficient expressions and loop counts.
    #[test]
    fn random_interleaved_stores_match_oracle(
        c0 in -50i64..50,
        c1 in -50i64..50,
        n in 0usize..33,
        data in prop::collection::vec(-1000i64..1000, 34),
    ) {
        let mut b = KernelBuilder::new("prop_interleave");
        let nn = b.scalar_param("n", ScalarTy::I64);
        let x = b.array_param("x", ScalarTy::I32);
        let y = b.array_param("y", ScalarTy::I32);
        let i = b.fresh_loop_var("i");
        b.for_loop(i, Expr::Int(0), Expr::Var(nn), 1, |b| {
            let two_i = Expr::bin(BinOp::Mul, Expr::Int(2), Expr::Var(i));
            let xi = Expr::load(x, Expr::Var(i));
            let xi1 = Expr::load(x, Expr::bin(BinOp::Add, Expr::Var(i), Expr::Int(1)));
            b.store(y, two_i.clone(), Expr::bin(BinOp::Mul, Expr::Int(c0), xi));
            b.store(
                y,
                Expr::bin(BinOp::Add, two_i, Expr::Int(1)),
                Expr::bin(BinOp::Mul, Expr::Int(c1), xi1),
            );
        });
        let kernel = b.finish();
        vapor_ir::validate(&kernel).unwrap();

        let mut env = Bindings::new();
        env.set_int("n", n as i64)
            .set_array("x", ArrayData::from_ints(ScalarTy::I32, &data))
            .set_array("y", ArrayData::zeroed(ScalarTy::I32, 2 * n.max(1)));
        let oracle = reference(&kernel, &env).unwrap();
        let cfg = CompileConfig::default();
        for target in [sse(), altivec(), neon64()] {
            let c = compile(&kernel, Flow::SplitVectorOpt, &target, &cfg).unwrap();
            let r = run(&target, &c, &env, AllocPolicy::Aligned).unwrap();
            arrays_match(oracle.array("y").unwrap(), r.out.array("y").unwrap(), 0.0)
                .unwrap_or_else(|e| panic!("{} (n={n}): {e}", target.name));
        }
    }
}

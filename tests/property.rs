//! Property-based tests: randomly generated affine kernels must compile
//! through the split pipeline and match the reference interpreter on
//! every SIMD target, for arbitrary loop counts (tail loops included)
//! and arbitrary constant offsets (realignment included).
//!
//! Generation is hand-rolled on the deterministic workspace PRNG (the
//! offline build has no proptest): fixed seeds per property, so failures
//! reproduce exactly; the failing kernel is printed on panic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vapor_core::{arrays_match, reference, AllocPolicy, Engine, ExecRequest, Flow};
use vapor_ir::{ArrayData, BinOp, Bindings, Expr, Kernel, KernelBuilder, ScalarTy};
use vapor_targets::{altivec, neon64, sse};

#[derive(Debug, Clone)]
enum Node {
    Load(i64),
    ConstI(i64),
    Bin(BinOp, Box<Node>, Box<Node>),
    Shr(Box<Node>, u8),
}

fn seeded(tag: &str) -> StdRng {
    let mut seed = [0u8; 32];
    for (i, b) in tag.bytes().enumerate() {
        seed[i % 32] ^= b.wrapping_mul(i as u8 + 17);
    }
    StdRng::from_seed(seed)
}

/// A random expression tree of at most `depth` levels over `x[i+k]`
/// loads and small integer constants (the old proptest strategy, by
/// hand).
fn random_node(rng: &mut StdRng, depth: u32) -> Node {
    let leaf = depth == 0 || rng.gen_range(0..4_i64) == 0;
    if leaf {
        if rng.gen_range(0..2_i64) == 0 {
            Node::Load(rng.gen_range(0..4_i64))
        } else {
            Node::ConstI(rng.gen_range(-20..20_i64))
        }
    } else if rng.gen_range(0..5_i64) == 0 {
        Node::Shr(
            Box::new(random_node(rng, depth - 1)),
            rng.gen_range(0..8_i64) as u8,
        )
    } else {
        let op = match rng.gen_range(0..5_i64) {
            0 => BinOp::Add,
            1 => BinOp::Sub,
            2 => BinOp::Mul,
            3 => BinOp::Min,
            _ => BinOp::Max,
        };
        Node::Bin(
            op,
            Box::new(random_node(rng, depth - 1)),
            Box::new(random_node(rng, depth - 1)),
        )
    }
}

fn to_expr(n: &Node, x: vapor_ir::ArrayId, i: vapor_ir::VarId) -> Expr {
    match n {
        Node::Load(off) => Expr::load(x, Expr::bin(BinOp::Add, Expr::Var(i), Expr::Int(*off))),
        Node::ConstI(v) => Expr::Int(*v),
        Node::Bin(op, a, b) => Expr::bin(*op, to_expr(a, x, i), to_expr(b, x, i)),
        Node::Shr(a, k) => Expr::bin(BinOp::Shr, to_expr(a, x, i), Expr::Int(*k as i64)),
    }
}

fn map_kernel(value: &Node) -> Kernel {
    let mut b = KernelBuilder::new("prop_map");
    let n = b.scalar_param("n", ScalarTy::I64);
    let x = b.array_param("x", ScalarTy::I32);
    let y = b.array_param("y", ScalarTy::I32);
    let i = b.fresh_loop_var("i");
    b.for_loop(i, Expr::Int(0), Expr::Var(n), 1, |b| {
        b.store(y, Expr::Var(i), to_expr(value, x, i));
    });
    b.finish()
}

fn reduction_kernel(value: &Node) -> Kernel {
    let mut b = KernelBuilder::new("prop_reduce");
    let n = b.scalar_param("n", ScalarTy::I64);
    let x = b.array_param("x", ScalarTy::I32);
    let y = b.array_param("y", ScalarTy::I32);
    let s = b.local("s", ScalarTy::I32);
    let i = b.fresh_loop_var("i");
    b.assign(s, Expr::Int(0));
    b.for_loop(i, Expr::Int(0), Expr::Var(n), 1, |b| {
        b.assign(s, Expr::bin(BinOp::Add, Expr::Var(s), to_expr(value, x, i)));
    });
    b.store(y, Expr::Int(0), Expr::Var(s));
    b.finish()
}

fn random_data(rng: &mut StdRng, len: usize) -> Vec<i64> {
    (0..len).map(|_| rng.gen_range(-1000..1000_i64)).collect()
}

fn check_kernel(engine: &Engine, kernel: &Kernel, n: usize, data: &[i64], mis: usize) {
    vapor_ir::validate(kernel).expect("generated kernel must validate");
    let mut env = Bindings::new();
    env.set_int("n", n as i64)
        .set_array("x", ArrayData::from_ints(ScalarTy::I32, data))
        .set_array("y", ArrayData::zeroed(ScalarTy::I32, n.max(1)));
    let oracle = reference(kernel, &env).expect("oracle");
    for target in [sse(), altivec(), neon64()] {
        for flow in [Flow::SplitVectorOpt, Flow::SplitVectorNaive] {
            // A JIT that owns allocation never sees misaligned bases: the
            // base_aligned guards it folds are promises about its own
            // allocator. Misaligned placement only makes sense for the
            // optimizing online flow, which emits runtime checks.
            let policy = if mis == 0 || flow == Flow::SplitVectorNaive {
                AllocPolicy::Aligned
            } else {
                AllocPolicy::Misaligned(mis)
            };
            let req = ExecRequest::new(kernel, &target, &env)
                .flow(flow)
                .policy(policy);
            let r = engine
                .execute(&req)
                .unwrap_or_else(|e| panic!("{flow} on {}: {e}", target.name));
            arrays_match(oracle.array("y").unwrap(), r.out.array("y").unwrap(), 0.0)
                .unwrap_or_else(|e| {
                    panic!(
                        "{flow} on {} (n={n}, mis={mis}): {e}\nkernel:\n{}",
                        target.name,
                        vapor_ir::print_kernel(kernel)
                    )
                });
        }
    }
}

#[test]
fn random_map_kernels_match_oracle() {
    let mut rng = seeded("random_map_kernels_match_oracle");
    let engine = Engine::new();
    for case in 0..32 {
        let value = random_node(&mut rng, 3);
        let n = rng.gen_range(0..40_i64) as usize;
        let data = random_data(&mut rng, 44);
        let mis = [0usize, 4, 12][rng.gen_range(0..3_i64) as usize];
        let _ = case;
        check_kernel(&engine, &map_kernel(&value), n, &data, mis);
    }
}

#[test]
fn random_reduction_kernels_match_oracle() {
    let mut rng = seeded("random_reduction_kernels_match_oracle");
    let engine = Engine::new();
    for _ in 0..32 {
        let value = random_node(&mut rng, 2);
        let n = rng.gen_range(0..40_i64) as usize;
        let data = random_data(&mut rng, 44);
        check_kernel(&engine, &reduction_kernel(&value), n, &data, 0);
    }
}

/// Random straight-line machine-code sequences pushed through the
/// superinstruction fuser: fused and unfused dispatch must produce
/// bit-identical scalar registers, memory and execution statistics, and
/// the pass must be idempotent (fusing twice = fusing once). This
/// exercises the pattern-matcher on shapes the online compilers never
/// emit — partial matches, dataflow near-misses, back-to-back fusible
/// groups.
#[test]
fn random_straight_line_sequences_survive_fusion() {
    use vapor_ir::Value;
    use vapor_targets::{
        disasm_decoded, sse, AddrMode, DecodedProgram, MInst, Machine, MemAlign, SReg, ShiftSrc,
        VReg,
    };

    let mut rng = seeded("random_straight_line_sequences_survive_fusion");
    let t = sse();
    for case in 0..64 {
        // Program state the generator tracks so no op reads an
        // undefined register or strays out of the 256-byte array.
        let n_vregs = 4u32;
        let n_sregs = 6u32; // r0 = array base, r1..r3 ints, r4..r5 scratch
        let mut spilled: Vec<u32> = Vec::new();
        let mut insts: Vec<MInst> = Vec::new();
        let disp = |rng: &mut StdRng| rng.gen_range(0..15_i64) * 16;
        // Prologue: define every vreg from memory.
        for v in 0..n_vregs {
            insts.push(MInst::LoadV {
                dst: VReg(v),
                addr: AddrMode::base_disp(SReg(0), disp(&mut rng)),
                align: MemAlign::Unaligned,
            });
        }
        for _ in 0..rng.gen_range(8..40_i64) {
            let vr = |rng: &mut StdRng| VReg(rng.gen_range(0..n_vregs as i64) as u32);
            let sr = |rng: &mut StdRng| SReg(rng.gen_range(1..n_sregs as i64) as u32);
            match rng.gen_range(0..10_i64) {
                0 => insts.push(MInst::LoadV {
                    dst: vr(&mut rng),
                    addr: AddrMode::base_disp(SReg(0), disp(&mut rng)),
                    align: MemAlign::Unaligned,
                }),
                1 => insts.push(MInst::StoreV {
                    src: vr(&mut rng),
                    addr: AddrMode::base_disp(SReg(0), disp(&mut rng)),
                    align: MemAlign::Unaligned,
                }),
                2 | 3 => insts.push(MInst::VBin {
                    op: [BinOp::Add, BinOp::Mul, BinOp::Min][rng.gen_range(0..3_i64) as usize],
                    ty: ScalarTy::I32,
                    dst: vr(&mut rng),
                    a: vr(&mut rng),
                    b: vr(&mut rng),
                }),
                4 => insts.push(MInst::SBinImm {
                    op: BinOp::Add,
                    ty: ScalarTy::I64,
                    dst: sr(&mut rng),
                    a: sr(&mut rng),
                    imm: rng.gen_range(-8..8_i64),
                }),
                5 => insts.push(MInst::SBin {
                    op: BinOp::Mul,
                    ty: ScalarTy::I64,
                    dst: sr(&mut rng),
                    a: sr(&mut rng),
                    b: sr(&mut rng),
                }),
                6 => insts.push(MInst::Splat {
                    ty: ScalarTy::I32,
                    dst: vr(&mut rng),
                    src: sr(&mut rng),
                }),
                7 => insts.push(MInst::VShift {
                    left: rng.gen_range(0..2_i64) == 0,
                    ty: ScalarTy::I32,
                    dst: vr(&mut rng),
                    a: vr(&mut rng),
                    amt: ShiftSrc::Imm(rng.gen_range(0..8_i64) as u8),
                }),
                8 => insts.push(MInst::VReduce {
                    op: vapor_targets::ReduceOp::Plus,
                    ty: ScalarTy::I32,
                    dst: sr(&mut rng),
                    src: vr(&mut rng),
                }),
                _ => {
                    let slot = rng.gen_range(0..3_i64) as u32;
                    if spilled.contains(&slot) && rng.gen_range(0..2_i64) == 0 {
                        insts.push(MInst::SpillLd {
                            dst: sr(&mut rng),
                            slot,
                        });
                    } else {
                        insts.push(MInst::SpillSt {
                            src: sr(&mut rng),
                            slot,
                        });
                        spilled.push(slot);
                    }
                }
            }
        }
        // Epilogue: store every vreg so the memory comparison below
        // covers the whole vector register file.
        for v in 0..n_vregs {
            insts.push(MInst::StoreV {
                src: VReg(v),
                addr: AddrMode::base_disp(SReg(0), 256 + 16 * v as i64),
                align: MemAlign::Unaligned,
            });
        }
        let code = vapor_targets::MCode {
            insts,
            n_sregs,
            n_vregs,
            note: String::new(),
        };

        let fused = DecodedProgram::decode(&code, &t).unwrap();
        let unfused = DecodedProgram::decode_unfused(&code, &t).unwrap();
        let run_one = |prog: &DecodedProgram| {
            let mut m = Machine::new(&t, 4096);
            let base = m.mem.alloc(256 + 16 * n_vregs as usize, 16);
            for k in 0..64u64 {
                m.mem
                    .write(ScalarTy::I32, base + 4 * k, Value::Int(k as i64 - 31));
            }
            m.set_sreg(SReg(0), Value::Int(base as i64));
            for r in 1..n_sregs {
                m.set_sreg(SReg(r), Value::Int(r as i64 + 1));
            }
            let stats = m.run_decoded(prog).unwrap();
            let sregs: Vec<Value> = (0..n_sregs).map(|r| m.sreg(SReg(r))).collect();
            let mem = m.mem.slice(base, 256 + 16 * n_vregs as usize).to_vec();
            (stats, sregs, mem)
        };
        let a = run_one(&fused);
        let b = run_one(&unfused);
        assert_eq!(
            a,
            b,
            "case {case}: fused and unfused dispatch diverged\n{}",
            disasm_decoded(&fused)
        );

        // Idempotence: a second fusion pass is a no-op.
        let twice = fused.fuse();
        assert_eq!(twice.n_steps(), fused.n_steps(), "case {case}");
        assert_eq!(twice.fusion_stats(), fused.fusion_stats(), "case {case}");
        assert_eq!(
            disasm_decoded(&twice),
            disasm_decoded(&fused),
            "case {case}"
        );
    }
}

/// Strided (rate-2) store pairs — the interleave path — for random
/// coefficient expressions and loop counts.
#[test]
fn random_interleaved_stores_match_oracle() {
    let mut rng = seeded("random_interleaved_stores_match_oracle");
    let engine = Engine::new();
    for _ in 0..16 {
        let c0 = rng.gen_range(-50..50_i64);
        let c1 = rng.gen_range(-50..50_i64);
        let n = rng.gen_range(0..33_i64) as usize;
        let data = random_data(&mut rng, 34);

        let mut b = KernelBuilder::new("prop_interleave");
        let nn = b.scalar_param("n", ScalarTy::I64);
        let x = b.array_param("x", ScalarTy::I32);
        let y = b.array_param("y", ScalarTy::I32);
        let i = b.fresh_loop_var("i");
        b.for_loop(i, Expr::Int(0), Expr::Var(nn), 1, |b| {
            let two_i = Expr::bin(BinOp::Mul, Expr::Int(2), Expr::Var(i));
            let xi = Expr::load(x, Expr::Var(i));
            let xi1 = Expr::load(x, Expr::bin(BinOp::Add, Expr::Var(i), Expr::Int(1)));
            b.store(y, two_i.clone(), Expr::bin(BinOp::Mul, Expr::Int(c0), xi));
            b.store(
                y,
                Expr::bin(BinOp::Add, two_i, Expr::Int(1)),
                Expr::bin(BinOp::Mul, Expr::Int(c1), xi1),
            );
        });
        let kernel = b.finish();
        vapor_ir::validate(&kernel).unwrap();

        let mut env = Bindings::new();
        env.set_int("n", n as i64)
            .set_array("x", ArrayData::from_ints(ScalarTy::I32, &data))
            .set_array("y", ArrayData::zeroed(ScalarTy::I32, 2 * n.max(1)));
        let oracle = reference(&kernel, &env).unwrap();
        for target in [sse(), altivec(), neon64()] {
            let r = engine
                .execute(&ExecRequest::new(&kernel, &target, &env))
                .unwrap();
            arrays_match(oracle.array("y").unwrap(), r.out.array("y").unwrap(), 0.0)
                .unwrap_or_else(|e| panic!("{} (n={n}): {e}", target.name));
        }
    }
}

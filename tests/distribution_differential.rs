//! Differential tests for Allen–Kennedy loop distribution.
//!
//! Three layers:
//! 1. The distribution demo kernels (acyclic split; vector half + scalar
//!    recurrence residual) execute bit-compatibly with the reference
//!    interpreter on every fixed-width target, every flow, and on the
//!    VLA families at every tested runtime VL.
//! 2. The whole suite runs with and without distribution
//!    (`CompileConfig::no_distribution`) and both configurations match
//!    the oracle — distribution can only change *how* a loop compiles,
//!    never what it computes.
//! 3. Regressions for the dependence-analysis surface the distribution
//!    rewrite touched: same-iteration store→load reuse, store-free
//!    reduction bodies, and interleaved (no contiguous store) loops all
//!    still vectorize.

use vapor_core::{arrays_match, reference, CompileConfig, Engine, ExecRequest, Flow};
use vapor_frontend::parse_kernel;
use vapor_ir::{ArrayData, Bindings, Kernel, ScalarTy};
use vapor_kernels::{suite, Scale};
use vapor_targets::{altivec, avx, neon64, rvv, scalar_only, sse, sve, VLA_TEST_BITS};
use vapor_vectorizer::{vectorize, RejectCategory, VectorizeOptions};

const N: i64 = 37; // odd, to exercise tail loops

/// Deterministic float array: small values, no rounding drama.
fn farray(len: usize, seed: u64) -> ArrayData {
    let vals: Vec<f64> = (0..len as u64)
        .map(|i| ((i * 37 + seed * 11) % 23) as f64 * 0.125 - 1.0)
        .collect();
    ArrayData::from_floats(ScalarTy::F32, &vals)
}

fn env_for(kernel: &Kernel, lens: &[(&str, usize)]) -> Bindings {
    let mut env = Bindings::new();
    env.set_int("n", N);
    for (i, (name, len)) in lens.iter().enumerate() {
        env.set_array(name, farray(*len, i as u64 + 1));
    }
    let _ = kernel; // names are validated by the interpreter/VM binding step
    env
}

fn check_everywhere(kernel: &Kernel, env: &Bindings, what: &str) {
    let engine = Engine::new();
    let oracle = reference(kernel, env).unwrap_or_else(|e| panic!("{what}: oracle failed: {e}"));
    for target in [
        sse(),
        altivec(),
        neon64(),
        avx(),
        scalar_only(),
        sve(),
        rvv(),
    ] {
        for flow in Flow::ALL {
            let result = engine
                .execute(&ExecRequest::new(kernel, &target, env).flow(flow))
                .unwrap_or_else(|e| panic!("{what} [{flow} on {}]: {e}", target.name));
            for (name, expected) in oracle.arrays() {
                arrays_match(expected, result.out.array(name).unwrap(), 2e-4).unwrap_or_else(
                    |e| panic!("{what} [{flow} on {}]: array {name}: {e}", target.name),
                );
            }
        }
    }
    for family in [sve(), rvv()] {
        for vl in VLA_TEST_BITS {
            let result = engine
                .execute(
                    &ExecRequest::new(kernel, &family, env)
                        .flow(Flow::SplitVectorOpt)
                        .vl_bits(vl),
                )
                .unwrap_or_else(|e| panic!("{what} [{} @VL={vl}]: {e}", family.name));
            for (name, expected) in oracle.arrays() {
                arrays_match(expected, result.out.array(name).unwrap(), 2e-4).unwrap_or_else(
                    |e| panic!("{what} [{} @VL={vl}]: array {name}: {e}", family.name),
                );
            }
        }
    }
}

/// Both statements land in acyclic singleton SCCs: the loop distributes
/// into two vector sub-loops (the carried dependence `a[i-1]` is honored
/// by emitting them in dependence order).
#[test]
fn acyclic_split_vectorizes_both_halves() {
    let kernel = parse_kernel(
        "kernel dist_split(long n, float a[], float b[], float c[]) {
           for (long i = 1; i < n; i++) {
             a[i] = b[i] + 1.5;
             c[i] = a[i - 1] * 2.5;
           }
         }",
    )
    .unwrap();
    let result = vectorize(&kernel, &VectorizeOptions::default());
    let report = &result.reports[0];
    assert!(report.vectorized, "{report:#?}");
    assert_eq!(report.parts.len(), 2, "{report:#?}");
    assert!(report.parts.iter().all(|p| p.vectorized), "{report:#?}");
    assert_eq!(report.parts[0].stmts, vec![0]);
    assert_eq!(report.parts[1].stmts, vec![1]);

    let env = env_for(
        &kernel,
        &[("a", N as usize), ("b", N as usize), ("c", N as usize)],
    );
    check_everywhere(&kernel, &env, "dist_split");
}

/// The recurrence statement stays behind as a scalar residual loop; the
/// acyclic statement still vectorizes. This is the PR's core claim: a
/// dependence cycle no longer condemns the whole loop.
#[test]
fn recurrence_residual_keeps_vector_half() {
    let kernel = parse_kernel(
        "kernel dist_residual(long n, float a[], float b[], float c[], float d[]) {
           for (long i = 1; i < n; i++) {
             b[i] = a[i] + c[i];
             d[i] = d[i - 1] + b[i];
           }
         }",
    )
    .unwrap();
    let result = vectorize(&kernel, &VectorizeOptions::default());
    let report = &result.reports[0];
    assert!(report.vectorized, "{report:#?}");
    assert_eq!(report.parts.len(), 2, "{report:#?}");
    assert!(report.parts[0].vectorized, "{report:#?}");
    assert!(!report.parts[1].vectorized, "{report:#?}");
    assert_eq!(
        report.parts[1].reason.as_ref().unwrap().category,
        RejectCategory::Recurrence
    );

    // Without distribution the same loop is rejected whole.
    let opts = VectorizeOptions {
        no_distribution: true,
        ..Default::default()
    };
    let undistributed = vectorize(&kernel, &opts);
    assert!(
        undistributed.reports.iter().all(|r| !r.vectorized),
        "{:#?}",
        undistributed.reports
    );

    let env = env_for(
        &kernel,
        &[
            ("a", N as usize),
            ("b", N as usize),
            ("c", N as usize),
            ("d", N as usize),
        ],
    );
    check_everywhere(&kernel, &env, "dist_residual");
}

/// Same-iteration store→load reuse (`a[i]` written then read in the same
/// iteration) is not a loop-carried dependence: the loop must vectorize
/// *fused* — whole-loop analysis accepts it, so distribution never runs.
#[test]
fn same_iteration_reuse_vectorizes_fused() {
    let kernel = parse_kernel(
        "kernel reuse(long n, float a[], float b[], float c[]) {
           for (long i = 0; i < n; i++) {
             a[i] = b[i] + 1.5;
             c[i] = a[i] * 2.5;
           }
         }",
    )
    .unwrap();
    let result = vectorize(&kernel, &VectorizeOptions::default());
    let report = &result.reports[0];
    assert!(report.vectorized, "{report:#?}");
    assert!(
        report.parts.is_empty(),
        "same-iteration reuse must not trigger distribution: {report:#?}"
    );

    let env = env_for(
        &kernel,
        &[("a", N as usize), ("b", N as usize), ("c", N as usize)],
    );
    check_everywhere(&kernel, &env, "reuse");
}

/// Regressions for the deleted `any_contig_store` computation: loops
/// whose stores are all strided (interleave) and loops with no store at
/// all (pure reduction body) must still vectorize.
#[test]
fn store_shape_regressions_still_vectorize() {
    let interleave = parse_kernel(
        "kernel interleave(long n, float x[], float y[]) {
           for (long i = 0; i < n; i++) {
             y[2*i] = x[i] * 1.5;
             y[2*i + 1] = x[i + 1] * 2.5;
           }
         }",
    )
    .unwrap();
    let result = vectorize(&interleave, &VectorizeOptions::default());
    assert!(
        result.reports.iter().any(|r| r.vectorized),
        "interleave (no contiguous store) should vectorize: {:#?}",
        result.reports
    );
    let env = env_for(&interleave, &[("x", N as usize + 1), ("y", 2 * N as usize)]);
    check_everywhere(&interleave, &env, "interleave");

    let reduction = parse_kernel(
        "kernel redonly(long n, float x[], float y[]) {
           float s;
           s = 0.0;
           for (long i = 0; i < n; i++) {
             s += x[i] * x[i];
           }
           y[0] = s;
         }",
    )
    .unwrap();
    let result = vectorize(&reduction, &VectorizeOptions::default());
    assert!(
        result.reports.iter().any(|r| r.vectorized),
        "store-free reduction body should vectorize: {:#?}",
        result.reports
    );
    let env = env_for(&reduction, &[("x", N as usize), ("y", 1)]);
    check_everywhere(&reduction, &env, "redonly");
}

/// The whole suite, distributed vs. undistributed: both configurations
/// must match the oracle (and therefore each other) on a fixed-width and
/// a VLA target.
#[test]
fn suite_matches_oracle_with_and_without_distribution() {
    let engine = Engine::new();
    let no_dist = CompileConfig {
        no_distribution: true,
        ..Default::default()
    };
    for spec in suite() {
        let kernel = spec.kernel();
        let env = spec.env(Scale::Test);
        let oracle = reference(&kernel, &env)
            .unwrap_or_else(|e| panic!("{}: oracle failed: {e}", spec.name));
        for target in [sse(), sve()] {
            for cfg in [CompileConfig::default(), no_dist.clone()] {
                let result = engine
                    .execute(
                        &ExecRequest::new(&kernel, &target, &env)
                            .flow(Flow::SplitVectorOpt)
                            .config(cfg.clone()),
                    )
                    .unwrap_or_else(|e| {
                        panic!(
                            "{} [{} no_distribution={}]: {e}",
                            spec.name, target.name, cfg.no_distribution
                        )
                    });
                for (name, expected) in oracle.arrays() {
                    arrays_match(expected, result.out.array(name).unwrap(), 2e-4).unwrap_or_else(
                        |e| {
                            panic!(
                                "{} [{} no_distribution={}]: array {name}: {e}",
                                spec.name, target.name, cfg.no_distribution
                            )
                        },
                    );
                }
            }
        }
    }
}

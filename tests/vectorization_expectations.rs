//! Each kernel must exercise exactly the vectorization features the
//! paper's Table 2 annotates it with (and the non-vectorizable Polybench
//! solvers must be rejected).

use vapor_kernels::{suite, Scale};
use vapor_vectorizer::{vectorize, VectorizeOptions};

#[test]
fn suite_vectorization_and_features_match_table2() {
    for spec in suite() {
        let kernel = spec.kernel();
        let result = vectorize(&kernel, &VectorizeOptions::default());
        let vectorized = result.reports.iter().any(|r| r.vectorized);
        assert_eq!(
            vectorized, spec.expect_vectorized,
            "{}: vectorized={vectorized}; reports: {:#?}",
            spec.name, result.reports
        );
        let mut seen: Vec<vapor_vectorizer::Feature> = Vec::new();
        for r in &result.reports {
            for f in &r.features {
                if !seen.contains(f) {
                    seen.push(*f);
                }
            }
        }
        for want in spec.features {
            assert!(
                seen.contains(want),
                "{}: expected feature {want:?}, saw {seen:?}",
                spec.name
            );
        }
        // The vectorized bytecode must verify.
        vapor_bytecode::verify_function(&result.func)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let _ = spec.env(Scale::Test);
    }
}

#[test]
fn rejected_solvers_have_reasons() {
    for name in ["lu_fp", "ludcmp_fp", "seidel_fp"] {
        let spec = vapor_kernels::find(name).unwrap();
        let result = vectorize(&spec.kernel(), &VectorizeOptions::default());
        assert!(result.reports.iter().all(|r| !r.vectorized), "{name}");
        assert!(
            result.reports.iter().any(|r| r.reason.is_some()),
            "{name}: rejection must be explained"
        );
    }
}

//! Each kernel must exercise exactly the vectorization features the
//! paper's Table 2 annotates it with (and the non-vectorizable Polybench
//! solvers must be rejected with typed, explained reasons).

use vapor_kernels::{suite, Scale};
use vapor_vectorizer::{vectorize, RejectCategory, VectorizeOptions};

#[test]
fn suite_vectorization_and_features_match_table2() {
    for spec in suite() {
        let kernel = spec.kernel();
        let result = vectorize(&kernel, &VectorizeOptions::default());
        let vectorized = result.reports.iter().any(|r| r.vectorized);
        assert_eq!(
            vectorized, spec.expect_vectorized,
            "{}: vectorized={vectorized}; reports: {:#?}",
            spec.name, result.reports
        );
        let mut seen: Vec<vapor_vectorizer::Feature> = Vec::new();
        for r in &result.reports {
            for f in &r.features {
                if !seen.contains(f) {
                    seen.push(*f);
                }
            }
        }
        for want in spec.features {
            assert!(
                seen.contains(want),
                "{}: expected feature {want:?}, saw {seen:?}",
                spec.name
            );
        }
        // The vectorized bytecode must verify.
        vapor_bytecode::verify_function(&result.func)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let _ = spec.env(Scale::Test);
    }
}

/// The former floor kernels: `lu` and `ludcmp` now vectorize their inner
/// loops (bound-aware dependence solving; subtraction reductions), while
/// `seidel` is a genuine distance-1 recurrence that even Allen–Kennedy
/// distribution cannot split — and the planner must say so in a typed
/// category, per loop and per SCC.
#[test]
fn solver_verdicts_are_typed_and_explained() {
    for name in ["lu_fp", "ludcmp_fp"] {
        let spec = vapor_kernels::find(name).unwrap();
        let result = vectorize(&spec.kernel(), &VectorizeOptions::default());
        assert!(
            result.reports.iter().any(|r| r.vectorized),
            "{name}: inner loop should vectorize; reports: {:#?}",
            result.reports
        );
    }

    let spec = vapor_kernels::find("seidel_fp").unwrap();
    let result = vectorize(&spec.kernel(), &VectorizeOptions::default());
    assert!(result.reports.iter().all(|r| !r.vectorized), "seidel_fp");
    // Every unvectorized loop must carry a reason...
    for r in &result.reports {
        assert!(
            r.reason.is_some(),
            "seidel_fp: rejection must be explained: {r:#?}"
        );
    }
    // ...and the inner stencil loop specifically must be classified as a
    // recurrence with its (single, cyclic) SCC recorded by distribution.
    let inner = result
        .reports
        .iter()
        .find(|r| !r.parts.is_empty())
        .expect("seidel_fp: distribution should record the SCC partition");
    assert_eq!(
        inner.reason.as_ref().unwrap().category,
        RejectCategory::Recurrence,
        "{inner:#?}"
    );
    assert_eq!(inner.parts.len(), 1);
    assert_eq!(inner.parts[0].stmts, vec![0]);
    assert!(!inner.parts[0].vectorized);
    assert_eq!(
        inner.parts[0].reason.as_ref().unwrap().category,
        RejectCategory::Recurrence
    );
}

/// Disabling distribution must not regress the solvers that vectorize
/// without it (lu/ludcmp rely on dependence refinements, not splitting),
/// and must leave seidel rejected with the historical dependence reason.
#[test]
fn no_distribution_ablation_keeps_refinements() {
    let opts = VectorizeOptions {
        no_distribution: true,
        ..Default::default()
    };
    for name in ["lu_fp", "ludcmp_fp"] {
        let spec = vapor_kernels::find(name).unwrap();
        let result = vectorize(&spec.kernel(), &opts);
        assert!(
            result.reports.iter().any(|r| r.vectorized),
            "{name} should vectorize even without distribution"
        );
    }
    let spec = vapor_kernels::find("seidel_fp").unwrap();
    let result = vectorize(&spec.kernel(), &opts);
    assert!(result.reports.iter().all(|r| !r.vectorized));
    let inner = result
        .reports
        .iter()
        .find(|r| r.reason.is_some())
        .unwrap();
    assert_eq!(
        inner.reason.as_ref().unwrap().category,
        RejectCategory::Dependence
    );
    assert!(inner.parts.is_empty(), "no SCC info when distribution is off");
}
